package sim

import (
	"fmt"

	"mobicol/internal/collector"
	"mobicol/internal/des"
	"mobicol/internal/geom"
	"mobicol/internal/obs"
	"mobicol/internal/routing"
	"mobicol/internal/wsn"
)

// RoundTrace is the packet-level outcome of one gathering round.
type RoundTrace struct {
	// Done[i] is the time sensor i's packet was collected: picked up by
	// the collector (mobile schemes) or delivered to the sink (static).
	// Negative for packets that never arrive.
	Done []float64
	// Finish is the time the round completed (collector back at the
	// sink, or last packet delivered).
	Finish float64
	// PeakQueue[i] is the peak number of packets buffered at node i
	// (static relaying) or at stop i (mobile schemes). Buffer sizing —
	// the paper's motivation for bounding sensors per stop — reads
	// straight off this.
	PeakQueue []int
}

// MaxQueue returns the largest peak buffer occupancy.
func (rt *RoundTrace) MaxQueue() int {
	m := 0
	for _, q := range rt.PeakQueue {
		if q > m {
			m = q
		}
	}
	return m
}

// MeanDone returns the mean collection time over arrived packets.
func (rt *RoundTrace) MeanDone() float64 {
	sum, n := 0.0, 0
	for _, t := range rt.Done {
		if t >= 0 {
			sum += t
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// DESMobileRound simulates one collector round at packet granularity: the
// collector drives stop to stop at spec.Speed and polls each assigned
// sensor sequentially (spec.UploadTime each). Done[i] is the pickup time.
// PeakQueue is per stop: how many packets sat buffered there when the
// collector arrived — exactly the polling point's required buffer.
func DESMobileRound(nw *wsn.Network, plan *collector.TourPlan, spec collector.Spec) (*RoundTrace, error) {
	return DESMobileRoundObs(nw, plan, spec, nil)
}

// DESMobileRoundObs is DESMobileRound with observability: a "des.mobile"
// span carrying the dispatched-event count and simulated finish time,
// the "des.events" counter, and the per-stop peak buffer occupancy in
// the "des.queue_peak" histogram. A nil span disables tracing.
func DESMobileRoundObs(nw *wsn.Network, plan *collector.TourPlan, spec collector.Spec, sp *obs.Span) (*RoundTrace, error) {
	if spec.Speed <= 0 {
		return nil, fmt.Errorf("sim: non-positive collector speed")
	}
	n := nw.N()
	rt := &RoundTrace{
		Done:      make([]float64, n),
		PeakQueue: make([]int, len(plan.Stops)),
	}
	for i := range rt.Done {
		rt.Done[i] = -1
	}
	// Sensors assigned per stop.
	atStop := make([][]int, len(plan.Stops))
	for i, s := range plan.UploadAt {
		if s >= 0 {
			atStop[s] = append(atStop[s], i)
		}
	}
	sim := des.New()
	cur := plan.Sink
	t := 0.0
	for sIdx, stop := range plan.Stops {
		t += geom.Meters(cur.Dist(stop)).TravelTime(spec.Speed)
		cur = stop
		rt.PeakQueue[sIdx] = len(atStop[sIdx])
		for k, sensor := range atStop[sIdx] {
			pickup := t + float64(k+1)*spec.UploadTime
			sensor := sensor
			sim.At(pickup, func(now float64) { rt.Done[sensor] = now })
		}
		t += float64(len(atStop[sIdx])) * spec.UploadTime
	}
	t += geom.Meters(cur.Dist(plan.Sink)).TravelTime(spec.Speed)
	finish := t
	sim.At(finish, func(now float64) { rt.Finish = now })
	if _, drained := sim.Run(0); !drained {
		return nil, fmt.Errorf("sim: mobile round did not drain")
	}
	recordDESRound(sp, "des.mobile", sim, rt)
	return rt, nil
}

// recordDESRound attaches one DES round's outcome to sp: events
// dispatched (span field + "des.events" counter), the simulated finish
// time, and per-node/stop peak queue depths in "des.queue_peak". All of
// it is derived from simulator state, so the event content stays
// deterministic. No-op when sp is nil.
func recordDESRound(sp *obs.Span, name string, sim *des.Simulator, rt *RoundTrace) {
	if sp == nil {
		return
	}
	child := sp.Child(name)
	child.SetInt("events", int64(sim.Steps()))
	child.SetFloat("finish_s", rt.Finish)
	child.SetInt("queue_max", int64(rt.MaxQueue()))
	child.Count("des.events", int64(sim.Steps()))
	for _, q := range rt.PeakQueue {
		child.Observe("des.queue_peak", float64(q))
	}
	child.End()
}

// DESStaticRound simulates one static-sink round with store-and-forward
// contention: every sensor starts holding its own packet; a node transmits
// one packet per perHopDelay seconds toward its parent, queueing arrivals
// behind its own traffic. Unlike the closed-form maxHops·delay estimate,
// this captures the serialisation at sink-adjacent relays, which dominates
// in dense fields.
func DESStaticRound(plan *routing.Plan, perHopDelay float64) (*RoundTrace, error) {
	return DESStaticRoundObs(plan, perHopDelay, nil)
}

// DESStaticRoundObs is DESStaticRound with the same observability
// contract as DESMobileRoundObs, under a "des.static" span.
func DESStaticRoundObs(plan *routing.Plan, perHopDelay float64, sp *obs.Span) (*RoundTrace, error) {
	if perHopDelay <= 0 {
		return nil, fmt.Errorf("sim: non-positive per-hop delay")
	}
	nw := plan.Net
	n := nw.N()
	rt := &RoundTrace{
		Done:      make([]float64, n),
		PeakQueue: make([]int, n),
	}
	for i := range rt.Done {
		rt.Done[i] = -1
	}
	sim := des.New()
	queues := make([][]int, n) // packet origin IDs waiting at each node
	busy := make([]bool, n)

	var startTx func(node int)
	deliver := func(node, origin int, now float64) {
		if plan.NextHop[node] == routing.DirectUpload {
			rt.Done[origin] = now
			if now > rt.Finish {
				rt.Finish = now
			}
			return
		}
		next := plan.NextHop[node]
		queues[next] = append(queues[next], origin)
		if len(queues[next]) > rt.PeakQueue[next] {
			rt.PeakQueue[next] = len(queues[next])
		}
		if !busy[next] {
			startTx(next)
		}
	}
	startTx = func(node int) {
		if busy[node] || len(queues[node]) == 0 {
			return
		}
		busy[node] = true
		sim.After(perHopDelay, func(now float64) {
			origin := queues[node][0]
			queues[node] = queues[node][1:]
			busy[node] = false
			deliver(node, origin, now)
			startTx(node)
		})
	}
	// Seed: every connected sensor enqueues its own packet at t=0.
	for i := 0; i < n; i++ {
		if !plan.Connected(i) {
			continue
		}
		queues[i] = append(queues[i], i)
		if len(queues[i]) > rt.PeakQueue[i] {
			rt.PeakQueue[i] = len(queues[i])
		}
	}
	for i := 0; i < n; i++ {
		if len(queues[i]) > 0 {
			startTx(i)
		}
	}
	if _, drained := sim.Run(50_000_000); !drained {
		return nil, fmt.Errorf("sim: static round exceeded event budget")
	}
	recordDESRound(sp, "des.static", sim, rt)
	return rt, nil
}
