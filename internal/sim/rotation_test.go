package sim

import (
	"testing"

	"mobicol/internal/collector"
	"mobicol/internal/shdgp"
	"mobicol/internal/tsp"
)

func diversePlans(t *testing.T, seed uint64, k int) (*Rotation, *Mobile) {
	t.Helper()
	nw := testNet(seed)
	sols, err := shdgp.PlanDiverse(shdgp.NewProblem(nw), k, tsp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]*collector.TourPlan, len(sols))
	for i, s := range sols {
		plans[i] = s.Plan
	}
	rot, err := NewRotation("shdg-rotate", nw, plans)
	if err != nil {
		t.Fatal(err)
	}
	return rot, NewMobile("shdg", nw, plans[0])
}

func TestRotationSchemeBasics(t *testing.T) {
	rot, _ := diversePlans(t, 30, 4)
	var _ Scheme = rot
	if rot.Coverage() != 1 {
		t.Fatalf("rotation coverage %v", rot.Coverage())
	}
	if rot.TourLength() <= 0 {
		t.Fatal("rotation tour length")
	}
	spec := collector.DefaultSpec()
	if rot.RoundTime(spec, 0) <= 0 {
		t.Fatal("rotation round time")
	}
}

func TestRotationUsesAllPlansAcrossRounds(t *testing.T) {
	rot, _ := diversePlans(t, 31, 3)
	if len(rot.Plans) < 2 {
		t.Skip("field insensitive to tie-break: only one distinct plan")
	}
	// Two consecutive rounds must charge along different plans: compare
	// the residual deltas.
	m := smallBattery()
	a, err := RunLifetime(rot, rot.net.N(), m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != 2 {
		t.Fatalf("horizon run %d rounds", a.Rounds)
	}
}

func TestRotationExtendsLifetime(t *testing.T) {
	wins, total := 0, 0
	for seed := uint64(32); seed <= 37; seed++ {
		rot, single := diversePlans(t, seed, 4)
		if len(rot.Plans) < 2 {
			continue
		}
		m := smallBattery()
		a, err := RunLifetime(rot, rot.net.N(), m, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunLifetime(single, rot.net.N(), m, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if a.Rounds >= b.Rounds {
			wins++
		}
	}
	if total == 0 {
		t.Skip("no multi-plan fields drawn")
	}
	// Rotation should at least match the single plan in the majority of
	// draws (it averages the worst-case upload distance).
	if wins*2 < total {
		t.Fatalf("rotation matched/beat single plan in only %d of %d fields", wins, total)
	}
}

func TestPlanDiverseDistinctAndValid(t *testing.T) {
	nw := testNet(38)
	p := shdgp.NewProblem(nw)
	sols, err := shdgp.PlanDiverse(p, 5, tsp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) == 0 {
		t.Fatal("no plans")
	}
	for i, s := range sols {
		if err := s.Validate(p); err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
	}
}

func TestPlanDiverseRejectsBadK(t *testing.T) {
	nw := testNet(39)
	if _, err := shdgp.PlanDiverse(shdgp.NewProblem(nw), 0, tsp.DefaultOptions()); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestNewRotationRejectsBadInput(t *testing.T) {
	nw := testNet(40)
	if _, err := NewRotation("x", nw, nil); err == nil {
		t.Fatal("empty plan set accepted")
	}
	bad := &collector.TourPlan{Sink: nw.Sink, UploadAt: make([]int, 3)}
	if _, err := NewRotation("x", nw, []*collector.TourPlan{bad}); err == nil {
		t.Fatal("mismatched plan accepted")
	}
}
