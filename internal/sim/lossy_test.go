package sim

import (
	"math"
	"testing"

	"mobicol/internal/energy"
	"mobicol/internal/radio"
	"mobicol/internal/routing"
	"mobicol/internal/shdgp"
	"mobicol/internal/wsn"
)

func lossyPair(t *testing.T, seed uint64, rm radio.Model) (*LossyMobile, *LossyStatic, *wsn.Network) {
	t.Helper()
	nw := wsn.MustDeploy(wsn.Config{N: 150, FieldSide: 200, Range: 30, Seed: seed})
	sol, err := shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	return NewLossyMobile("shdg-lossy", nw, sol.Plan, rm),
		NewLossyStatic(routing.BuildPlan(nw), rm), nw
}

func TestPerfectRadioMatchesLosslessCharging(t *testing.T) {
	mob, _, nw := lossyPair(t, 1, radio.Perfect())
	sol, err := shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	ideal := NewMobile("shdg", nw, sol.Plan)
	m := smallBattery()
	a := energy.NewLedger(nw.N(), m)
	b := energy.NewLedger(nw.N(), m)
	mob.ChargeRound(a)
	ideal.ChargeRound(b)
	for i := 0; i < nw.N(); i++ {
		if math.Abs(float64(a.Residual[i]-b.Residual[i])) > 1e-15 {
			t.Fatalf("perfect radio diverges from lossless at node %d", i)
		}
	}
	if mob.DeliveryRatio() != 1 {
		t.Fatalf("perfect radio delivery %v", mob.DeliveryRatio())
	}
}

func TestLossyCostsMoreThanPerfect(t *testing.T) {
	perfect, _, nw := lossyPair(t, 2, radio.Perfect())
	lossy, _, _ := lossyPair(t, 2, radio.Default())
	m := smallBattery()
	a := energy.NewLedger(nw.N(), m)
	b := energy.NewLedger(nw.N(), m)
	perfect.ChargeRound(a)
	lossy.ChargeRound(b)
	if b.ResidualStats().Mean > a.ResidualStats().Mean {
		t.Fatal("lossy links spent less energy than perfect links")
	}
}

func TestLossyDeliveryRatios(t *testing.T) {
	mob, static, _ := lossyPair(t, 3, radio.Default())
	dm, ds := mob.DeliveryRatio(), static.DeliveryRatio()
	if dm <= 0 || dm > 1 || ds <= 0 || ds > 1 {
		t.Fatalf("ratios out of range: mobile %v static %v", dm, ds)
	}
	// End-to-end chains multiply per-hop losses; single-hop uploads do
	// not, so the mobile ratio dominates.
	if dm < ds {
		t.Fatalf("mobile delivery %v below static %v", dm, ds)
	}
}

func TestLossyStaticChargesReceivers(t *testing.T) {
	_, static, nw := lossyPair(t, 4, radio.Default())
	led := energy.NewLedger(nw.N(), smallBattery())
	static.ChargeRound(led)
	// Relays (hops[i] == 1 sensors with children) must have paid rx costs;
	// total spend must exceed a tx-only accounting.
	spent := 0.0
	for _, r := range led.Residual {
		spent += float64(smallBattery().InitialJ - r)
	}
	txOnly := 0.0
	for i := 0; i < nw.N(); i++ {
		if static.Plan.Connected(i) {
			d := static.hopDist(i)
			txOnly += static.Radio.ExpectedTx(d, nw.Range) * float64(led.Model.TxCost(d)) * float64(static.Plan.Load[i])
		}
	}
	if spent <= txOnly {
		t.Fatalf("spend %v does not include receiver costs (tx-only %v)", spent, txOnly)
	}
}

func TestLossyLifetimeOrderingHolds(t *testing.T) {
	mob, static, nw := lossyPair(t, 5, radio.Default())
	m := smallBattery()
	a, err := RunLifetime(mob, nw.N(), m, 500000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLifetime(static, nw.N(), m, 500000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds <= b.Rounds {
		t.Fatalf("lossy mobile lifetime %d not beyond static %d", a.Rounds, b.Rounds)
	}
}

func TestLossySchemeInterfaces(t *testing.T) {
	mob, static, _ := lossyPair(t, 6, radio.Default())
	var _ Scheme = mob
	var _ Scheme = static
	if mob.TourLength() <= 0 || static.TourLength() != 0 {
		t.Fatal("tour lengths wrong")
	}
	if mob.Coverage() != 1 {
		t.Fatalf("mobile coverage %v", mob.Coverage())
	}
}
