package sim

import (
	"mobicol/internal/collector"
	"mobicol/internal/energy"
	"mobicol/internal/geom"
	"mobicol/internal/radio"
	"mobicol/internal/routing"
	"mobicol/internal/wsn"
)

// LossyMobile is the mobile single-hop scheme under a lossy link model:
// each upload costs its expected ARQ attempts, and delivery is
// probabilistic beyond the reliable region.
type LossyMobile struct {
	Label string
	Plan  *collector.TourPlan
	Radio radio.Model
	net   *wsn.Network
}

// NewLossyMobile wraps a tour plan with the link model.
func NewLossyMobile(label string, nw *wsn.Network, plan *collector.TourPlan, rm radio.Model) *LossyMobile {
	return &LossyMobile{Label: label, Plan: plan, Radio: rm, net: nw}
}

// Name implements Scheme.
func (m *LossyMobile) Name() string { return m.Label }

// assigned returns the number of sensors known to both the plan and the
// network. Clamping every per-sensor loop to it keeps a malformed plan
// (wrong UploadAt arity) from indexing out of bounds; the shortfall is
// surfaced through Unserved instead of a panic or a silent skip.
func (m *LossyMobile) assigned() int {
	n := len(m.Plan.UploadAt)
	if m.net.N() < n {
		n = m.net.N()
	}
	return n
}

// Unserved returns how many sensors get no valid upload this round:
// sensors the plan strands (UploadAt = -1 or a bogus stop index) plus any
// sensors the plan does not cover at all.
func (m *LossyMobile) Unserved() int {
	u := 0
	for i := 0; i < m.assigned(); i++ {
		if s := m.Plan.UploadAt[i]; s < 0 || s >= len(m.Plan.Stops) {
			u++
		}
	}
	if extra := m.net.N() - len(m.Plan.UploadAt); extra > 0 {
		u += extra
	}
	return u
}

// ChargeRound implements Scheme: expected attempts × per-attempt cost.
// Sensors without a valid upload stop spend nothing — they are counted by
// Unserved, not silently dropped from the energy story.
func (m *LossyMobile) ChargeRound(led *energy.Ledger) {
	r := m.net.Range
	for i := 0; i < m.assigned(); i++ {
		s := m.Plan.UploadAt[i]
		if s < 0 || s >= len(m.Plan.Stops) {
			continue
		}
		d := m.net.Nodes[i].Pos.Dist(m.Plan.Stops[s])
		led.Debit(i, led.Model.TxCost(d).Scale(m.Radio.ExpectedTx(d, r)))
	}
	led.EndRound()
}

// RoundTime implements Scheme (loss does not change the driving time;
// retransmissions hide inside the per-sensor upload slot).
func (m *LossyMobile) RoundTime(spec collector.Spec, relayDelay float64) float64 {
	return m.Plan.RoundTime(spec)
}

// TourLength implements Scheme.
func (m *LossyMobile) TourLength() geom.Meters { return m.Plan.Length() }

// Coverage implements Scheme.
func (m *LossyMobile) Coverage() float64 {
	if m.net.N() == 0 {
		return 1
	}
	return float64(m.Plan.Served()) / float64(m.net.N())
}

// DeliveryRatio returns the mean per-round probability that a sensor's
// packet reaches the collector within the retry budget.
func (m *LossyMobile) DeliveryRatio() float64 {
	if m.net.N() == 0 {
		return 1
	}
	sum := 0.0
	r := m.net.Range
	for i := 0; i < m.assigned(); i++ {
		s := m.Plan.UploadAt[i]
		if s < 0 || s >= len(m.Plan.Stops) {
			continue
		}
		sum += m.Radio.DeliveryProb(m.net.Nodes[i].Pos.Dist(m.Plan.Stops[s]), r)
	}
	return sum / float64(m.net.N())
}

// LossyStatic is the static-sink baseline under the same link model: every
// hop of every packet costs its expected attempts at the transmitter and
// the matching receptions at the receiver, and end-to-end delivery decays
// with chain length.
type LossyStatic struct {
	Plan  *routing.Plan
	Radio radio.Model
}

// NewLossyStatic wraps a routing plan with the link model.
func NewLossyStatic(plan *routing.Plan, rm radio.Model) *LossyStatic {
	return &LossyStatic{Plan: plan, Radio: rm}
}

// Name implements Scheme.
func (s *LossyStatic) Name() string { return "static-sink-lossy" }

// hopDist returns node v's next-hop distance.
func (s *LossyStatic) hopDist(v int) float64 {
	nw := s.Plan.Net
	if s.Plan.NextHop[v] == routing.DirectUpload {
		return nw.Nodes[v].Pos.Dist(nw.Sink)
	}
	return nw.Nodes[v].Pos.Dist(nw.Nodes[s.Plan.NextHop[v]].Pos)
}

// ChargeRound implements Scheme: walk every packet's chain, debiting
// expected transmissions at each relay and the matching receptions at the
// next hop.
func (s *LossyStatic) ChargeRound(led *energy.Ledger) {
	nw := s.Plan.Net
	r := nw.Range
	for i := 0; i < nw.N(); i++ {
		if !s.Plan.Connected(i) {
			continue
		}
		for v := i; v != routing.DirectUpload; v = s.Plan.NextHop[v] {
			d := s.hopDist(v)
			etx := s.Radio.ExpectedTx(d, r)
			led.Debit(v, led.Model.TxCost(d).Scale(etx))
			if next := s.Plan.NextHop[v]; next != routing.DirectUpload {
				led.Debit(next, led.Model.RxCost().Scale(etx))
			}
		}
	}
	led.EndRound()
}

// RoundTime implements Scheme.
func (s *LossyStatic) RoundTime(spec collector.Spec, relayDelay float64) float64 {
	return NewStatic(s.Plan).RoundTime(spec, relayDelay)
}

// TourLength implements Scheme.
func (s *LossyStatic) TourLength() geom.Meters { return 0 }

// Coverage implements Scheme.
func (s *LossyStatic) Coverage() float64 { return s.Plan.CoverageFraction() }

// DeliveryRatio returns the mean end-to-end delivery probability over
// connected sensors (each hop gets its own retry budget).
func (s *LossyStatic) DeliveryRatio() float64 {
	nw := s.Plan.Net
	if nw.N() == 0 {
		return 1
	}
	sum := 0.0
	for i := 0; i < nw.N(); i++ {
		if !s.Plan.Connected(i) {
			continue
		}
		var hops []float64
		for v := i; v != routing.DirectUpload; v = s.Plan.NextHop[v] {
			hops = append(hops, s.hopDist(v))
		}
		sum += s.Radio.ChainDeliveryProb(hops, nw.Range)
	}
	return sum / float64(nw.N())
}
