package sim

import (
	"fmt"

	"mobicol/internal/collector"
	"mobicol/internal/energy"
	"mobicol/internal/geom"
	"mobicol/internal/obs"
)

// LifetimeResult summarises a lifetime simulation.
type LifetimeResult struct {
	Scheme string
	// Rounds is the network lifetime: gathering rounds completed before
	// the first sensor death (== MaxRounds when nothing died).
	Rounds Rounds
	// Died reports whether any sensor depleted within the horizon.
	Died bool
	// Residual summarises the final energy distribution; Std is the
	// paper's uniformity argument in one number.
	Residual energy.Stats
	// AliveFraction is the fraction of sensors alive at the end.
	AliveFraction float64
	// Ledger is the final per-node energy state, exposed so callers can
	// run the internal/check conservation oracle over the simulation.
	Ledger *energy.Ledger
}

// RunLifetime charges scheme rounds against a fresh ledger until the first
// sensor dies or maxRounds elapse, and returns the summary. The energy
// model's InitialJ sets the battery size; callers shrink it to keep round
// counts tractable.
func RunLifetime(scheme Scheme, n int, model energy.Model, maxRounds int) (*LifetimeResult, error) {
	return RunLifetimeObs(scheme, n, model, maxRounds, nil)
}

// RunLifetimeObs is RunLifetime with observability: when tr is non-nil
// it wraps the simulation in a "lifetime" span (scheme, rounds, died),
// accumulates rounds into the "sim.rounds" counter, and records the
// final per-node residual energies into the "sim.residual_j" histogram
// — the uniformity distribution the paper's lifetime argument rests on.
// A nil trace makes it identical to RunLifetime.
func RunLifetimeObs(scheme Scheme, n int, model energy.Model, maxRounds int, tr *obs.Trace) (*LifetimeResult, error) {
	if maxRounds <= 0 {
		return nil, fmt.Errorf("sim: non-positive round horizon %d", maxRounds)
	}
	sp := tr.Start("lifetime")
	defer sp.End()
	sp.SetStr("scheme", scheme.Name())
	led := energy.NewLedger(n, model)
	rounds := 0
	for rounds < maxRounds {
		scheme.ChargeRound(led)
		rounds++ // the fatal round still gathered data; count it
		if led.FirstDeath() >= 0 {
			break
		}
	}
	res := &LifetimeResult{
		Scheme:   scheme.Name(),
		Rounds:   Rounds(rounds),
		Died:     led.FirstDeath() >= 0,
		Residual: led.ResidualStats(),
		Ledger:   led,
	}
	if n > 0 {
		res.AliveFraction = float64(led.AliveCount()) / float64(n)
	} else {
		res.AliveFraction = 1
	}
	sp.SetInt("rounds", int64(rounds))
	sp.SetInt("died", boolInt(res.Died))
	sp.Count("sim.rounds", int64(rounds))
	if tr != nil {
		// Bucket residuals on a fixed fraction-of-battery ladder so
		// histograms from different battery sizes stay comparable.
		//mdglint:ignore unitcheck obs boundary: histogram buckets carry raw numbers
		h := tr.Registry().Histogram("sim.residual_j", obs.LinearBuckets(0, float64(model.InitialJ)/8, 8))
		for _, e := range led.Residual {
			//mdglint:ignore unitcheck obs boundary: histogram samples carry raw numbers
			h.Observe(float64(e))
		}
	}
	return res, nil
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// LatencyResult summarises per-round collection latency.
type LatencyResult struct {
	Scheme  string
	Seconds float64
	TourM   geom.Meters
}

// MeasureLatency evaluates one round's latency under the given collector
// profile and per-hop relay delay (seconds).
func MeasureLatency(scheme Scheme, spec collector.Spec, relayDelay float64) *LatencyResult {
	return &LatencyResult{
		Scheme:  scheme.Name(),
		Seconds: scheme.RoundTime(spec, relayDelay),
		TourM:   scheme.TourLength(),
	}
}
