package sim

import (
	"fmt"

	"mobicol/internal/check"
	"mobicol/internal/energy"
	"mobicol/internal/geom"
	"mobicol/internal/routing"
	"mobicol/internal/shdgp"
	"mobicol/internal/wsn"
)

// AdaptiveResult describes degradation beyond the first death: the paper's
// lifetime metric stops at the first depleted sensor, but a deployed
// network keeps running — the question is how gracefully each scheme
// degrades when the planner may re-plan around the dead.
type AdaptiveResult struct {
	Scheme string
	// FirstDeath is the round of the first sensor death (-1 if none).
	FirstDeath int
	// HalfLife is the half-service life: the round at which fewer than
	// half the sensors are still alive *and having their data gathered*
	// (maxRounds when the horizon ends first). Counting deaths alone
	// would flatter the static sink: sensors stranded by dead relays
	// stop transmitting, idle forever, and never "die" — while
	// contributing nothing.
	HalfLife int
	// Rounds actually simulated.
	Rounds int
	// ServedAtHalf is the fraction of then-alive sensors whose data was
	// still being gathered at the half-life round. Mobile re-planning
	// keeps this at 1; a static sink strands survivors as relays die.
	ServedAtHalf float64
	// Replans counts plan rebuilds.
	Replans int
}

// planChecked runs the SHDGP planner over a survivor subnetwork and
// verifies the result against the single-hop invariants before the
// simulation charges a single joule from it. A replan that strands a
// survivor is a planner bug, and it fails the run loudly instead of
// silently skipping the stranded sensor.
func planChecked(sub *wsn.Network) (*shdgp.Solution, error) {
	sol, err := shdgp.Plan(shdgp.NewProblem(sub), shdgp.DefaultPlannerOptions())
	if err != nil {
		return nil, err
	}
	if err := check.Plan(sub, sol.Plan, check.Options{}); err != nil {
		return nil, fmt.Errorf("sim: adaptive replan over %d survivors: %w", sub.N(), err)
	}
	return sol, nil
}

// aliveSubnetwork builds a network over the alive sensors, returning the
// mapping from sub-indices to original indices.
func aliveSubnetwork(nw *wsn.Network, alive []bool) (*wsn.Network, []int) {
	var pts []geom.Point
	var origIdx []int
	for i, node := range nw.Nodes {
		if alive[i] {
			pts = append(pts, node.Pos)
			origIdx = append(origIdx, i)
		}
	}
	return wsn.New(pts, nw.Sink, nw.Range, nw.Field), origIdx
}

// RunAdaptiveMobile simulates the mobile single-hop scheme with
// re-planning: after every death the SHDGP planner runs again over the
// survivors, so the tour keeps shrinking and every living sensor stays
// served. Returns the degradation summary.
func RunAdaptiveMobile(nw *wsn.Network, model energy.Model, maxRounds int) (*AdaptiveResult, error) {
	if maxRounds <= 0 {
		return nil, fmt.Errorf("sim: non-positive horizon")
	}
	n := nw.N()
	led := energy.NewLedger(n, model)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	res := &AdaptiveResult{Scheme: "mobile-adaptive", FirstDeath: -1, HalfLife: maxRounds}
	sub, origIdx := aliveSubnetwork(nw, alive)
	sol, err := planChecked(sub)
	if err != nil {
		return nil, err
	}
	res.Replans = 1
	aliveCount := n
	for round := 0; round < maxRounds && aliveCount > n/2; round++ {
		res.Rounds = round + 1
		for subIdx, stop := range sol.Plan.UploadAt {
			if stop < 0 {
				continue
			}
			i := origIdx[subIdx]
			led.ChargeTx(i, sub.Nodes[subIdx].Pos.Dist(sol.Plan.Stops[stop]))
		}
		led.EndRound()
		died := false
		for i := 0; i < n; i++ {
			if alive[i] && !led.Alive(i) {
				alive[i] = false
				aliveCount--
				died = true
			}
		}
		if died {
			if res.FirstDeath < 0 {
				res.FirstDeath = round + 1
			}
			if aliveCount <= n/2 {
				res.HalfLife = round + 1
				break
			}
			sub, origIdx = aliveSubnetwork(nw, alive)
			sol, err = planChecked(sub)
			if err != nil {
				return nil, err
			}
			res.Replans++
		}
	}
	// Re-planning should serve every survivor; measure it from the final
	// plan rather than asserting it. Sensors the plan strands (stop < 0)
	// count as unserved — exactly what the oracle would reject.
	served := 0
	for subIdx, stop := range sol.Plan.UploadAt {
		if stop >= 0 && alive[origIdx[subIdx]] {
			served++
		}
	}
	if aliveCount > 0 {
		res.ServedAtHalf = float64(served) / float64(aliveCount)
	} else {
		res.ServedAtHalf = 1
	}
	return res, nil
}

// RunAdaptiveStatic simulates the static sink with routing rebuilt over
// the survivors after every death. Survivors disconnected from the sink
// stop transmitting (their data is simply lost), which is exactly the
// degradation mode mobility avoids.
func RunAdaptiveStatic(nw *wsn.Network, model energy.Model, maxRounds int) (*AdaptiveResult, error) {
	if maxRounds <= 0 {
		return nil, fmt.Errorf("sim: non-positive horizon")
	}
	n := nw.N()
	led := energy.NewLedger(n, model)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	res := &AdaptiveResult{Scheme: "static-adaptive", FirstDeath: -1, HalfLife: maxRounds}
	sub, origIdx := aliveSubnetwork(nw, alive)
	plan := routing.BuildPlan(sub)
	res.Replans = 1
	aliveCount := n
	servedCount := func() int {
		c := 0
		for subIdx := 0; subIdx < sub.N(); subIdx++ {
			if plan.Connected(subIdx) {
				c++
			}
		}
		return c
	}
	servedFrac := func() float64 {
		if sub.N() == 0 {
			return 0
		}
		return plan.CoverageFraction()
	}
	for round := 0; round < maxRounds && servedCount() > n/2; round++ {
		res.Rounds = round + 1
		for subIdx := 0; subIdx < sub.N(); subIdx++ {
			if !plan.Connected(subIdx) {
				continue
			}
			i := origIdx[subIdx]
			var d float64
			if plan.NextHop[subIdx] == routing.DirectUpload {
				d = sub.Nodes[subIdx].Pos.Dist(sub.Sink)
			} else {
				d = sub.Nodes[subIdx].Pos.Dist(sub.Nodes[plan.NextHop[subIdx]].Pos)
			}
			for t := 0; t < plan.Load[subIdx]; t++ {
				led.ChargeTx(i, d)
			}
			for r := 0; r < plan.Load[subIdx]-1; r++ {
				led.ChargeRx(i)
			}
		}
		led.EndRound()
		died := false
		for i := 0; i < n; i++ {
			if alive[i] && !led.Alive(i) {
				alive[i] = false
				aliveCount--
				died = true
			}
		}
		if died {
			if res.FirstDeath < 0 {
				res.FirstDeath = round + 1
			}
			sub, origIdx = aliveSubnetwork(nw, alive)
			plan = routing.BuildPlan(sub)
			res.Replans++
			if servedCount() <= n/2 {
				res.HalfLife = round + 1
				break
			}
		}
	}
	res.ServedAtHalf = servedFrac()
	return res, nil
}
