package sim

import (
	"math"
	"testing"

	"mobicol/internal/collector"
	"mobicol/internal/geom"
	"mobicol/internal/routing"
	"mobicol/internal/shdgp"
	"mobicol/internal/wsn"
)

func TestDESMobileRoundHandComputed(t *testing.T) {
	// Sink at origin, one stop at (10,0) with two sensors, speed 1,
	// upload 0.5 s. Arrive at t=10; pickups at 10.5 and 11; home at 11+10.
	nw := wsn.New([]geom.Point{geom.Pt(10, 5), geom.Pt(10, -5)}, geom.Pt(0, 0), 6, geom.Square(20))
	plan := &collector.TourPlan{
		Sink:     geom.Pt(0, 0),
		Stops:    []geom.Point{geom.Pt(10, 0)},
		UploadAt: []int{0, 0},
	}
	rt, err := DESMobileRound(nw, plan, collector.Spec{Speed: 1, UploadTime: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rt.Done[0]-10.5) > 1e-9 || math.Abs(rt.Done[1]-11) > 1e-9 {
		t.Fatalf("Done = %v", rt.Done)
	}
	if math.Abs(rt.Finish-21) > 1e-9 {
		t.Fatalf("Finish = %v", rt.Finish)
	}
	if rt.MaxQueue() != 2 {
		t.Fatalf("MaxQueue = %d", rt.MaxQueue())
	}
}

func TestDESMobileMatchesAnalyticRoundTime(t *testing.T) {
	nw := wsn.MustDeploy(wsn.Config{N: 120, FieldSide: 200, Range: 30, Seed: 3})
	sol, err := shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	spec := collector.DefaultSpec()
	rt, err := DESMobileRound(nw, sol.Plan, spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rt.Finish-sol.Plan.RoundTime(spec)) > 1e-6 {
		t.Fatalf("DES finish %.3f != analytic %.3f", rt.Finish, sol.Plan.RoundTime(spec))
	}
	for i, d := range rt.Done {
		if d < 0 {
			t.Fatalf("sensor %d never picked up", i)
		}
		if d > rt.Finish+1e-9 {
			t.Fatalf("pickup after finish")
		}
	}
}

func TestDESMobilePeakQueueMatchesAssignment(t *testing.T) {
	nw := wsn.MustDeploy(wsn.Config{N: 100, FieldSide: 150, Range: 30, Seed: 4})
	sol, err := shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := DESMobileRound(nw, sol.Plan, collector.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	counts := sol.Plan.SensorsAt()
	total := 0
	for s, c := range counts {
		if rt.PeakQueue[s] != c {
			t.Fatalf("stop %d queue %d != assigned %d", s, rt.PeakQueue[s], c)
		}
		total += c
	}
	if total != nw.N() {
		t.Fatalf("assignments total %d", total)
	}
}

func TestDESStaticChainNoContention(t *testing.T) {
	// Pure chain: sink - s0 - s1 - s2. s0's own packet arrives at delay;
	// with store-and-forward, s1's at 3*delay (queued behind s0's at s0),
	// s2's at 5*delay... compute: t=0 all start. s0 tx own -> sink @1d.
	// s1 tx own -> s0 @1d; s0 tx s1's @2d->sink? s0 became free at 1d,
	// queue got s1's at 1d, arrives sink 2d. s2's: s1 free at 1d, s2's
	// arrives s1 at 1d, s1 tx @2d to s0, s0 free (sent s1's 1d..2d),
	// s0 tx 2d..3d -> sink at 3d.
	pts := []geom.Point{geom.Pt(8, 0), geom.Pt(16, 0), geom.Pt(24, 0)}
	nw := wsn.New(pts, geom.Pt(0, 0), 10, geom.Square(50))
	plan := routing.BuildPlan(nw)
	rt, err := DESStaticRound(plan, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i, w := range want {
		if math.Abs(rt.Done[i]-w) > 1e-9 {
			t.Fatalf("Done = %v, want %v", rt.Done, want)
		}
	}
	if rt.Finish != 3 {
		t.Fatalf("Finish = %v", rt.Finish)
	}
}

func TestDESStaticStarContention(t *testing.T) {
	// A relay hub: sink - hub - {4 leaves}. The hub serialises: its own
	// packet at 1d, then the leaves' at 3d,4d,5d,6d (leaf arrives hub at
	// 1d, hub busy until... hub tx own 0..1; leaves arrive at 1; hub tx
	// them 1..2, 2..3, 3..4, 4..5 -> sink arrivals 2,3,4,5.
	pts := []geom.Point{
		geom.Pt(8, 0),                                                   // hub (sensor 0)
		geom.Pt(16, 0), geom.Pt(16, 3), geom.Pt(16, -3), geom.Pt(14, 6), // leaves
	}
	nw := wsn.New(pts, geom.Pt(0, 0), 10, geom.Square(50))
	plan := routing.BuildPlan(nw)
	for i := 1; i < 5; i++ {
		if plan.NextHop[i] != 0 {
			t.Fatalf("leaf %d routes via %d, want hub", i, plan.NextHop[i])
		}
	}
	rt, err := DESStaticRound(plan, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Done[0] != 1 {
		t.Fatalf("hub own packet at %v", rt.Done[0])
	}
	if rt.Finish != 5 {
		t.Fatalf("Finish = %v, want 5 (serialised hub)", rt.Finish)
	}
	// The closed-form estimate maxHops*delay = 2 underestimates: this is
	// exactly the congestion the DES captures.
	if rt.Finish <= 2 {
		t.Fatal("no contention captured")
	}
	if rt.PeakQueue[0] < 3 {
		t.Fatalf("hub peak queue %d, want >= 3", rt.PeakQueue[0])
	}
}

func TestDESStaticAllPacketsArrive(t *testing.T) {
	nw := wsn.MustDeploy(wsn.Config{N: 200, FieldSide: 200, Range: 30, Seed: 5})
	plan := routing.BuildPlan(nw)
	rt, err := DESStaticRound(plan, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nw.N(); i++ {
		if plan.Connected(i) && rt.Done[i] < 0 {
			t.Fatalf("connected sensor %d never delivered", i)
		}
		if !plan.Connected(i) && rt.Done[i] >= 0 {
			t.Fatalf("disconnected sensor %d delivered", i)
		}
	}
	// Contention makes the true finish at least the analytic bound.
	analytic := NewStatic(plan).RoundTime(collector.DefaultSpec(), 0.005)
	if rt.Finish < analytic-1e-9 {
		t.Fatalf("DES finish %.4f below hop-count bound %.4f", rt.Finish, analytic)
	}
}

func TestDESStaticDisconnected(t *testing.T) {
	pts := []geom.Point{geom.Pt(8, 0), geom.Pt(190, 190)}
	nw := wsn.New(pts, geom.Pt(0, 0), 10, geom.Square(200))
	plan := routing.BuildPlan(nw)
	rt, err := DESStaticRound(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Done[1] >= 0 {
		t.Fatal("stranded packet delivered")
	}
}

func TestDESRejectsBadParams(t *testing.T) {
	nw := wsn.MustDeploy(wsn.Config{N: 10, FieldSide: 100, Range: 30, Seed: 1})
	plan := routing.BuildPlan(nw)
	if _, err := DESStaticRound(plan, 0); err == nil {
		t.Fatal("zero delay accepted")
	}
	sol, err := shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DESMobileRound(nw, sol.Plan, collector.Spec{Speed: 0}); err == nil {
		t.Fatal("zero speed accepted")
	}
}
