package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestProfilesDisabled(t *testing.T) {
	p, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("no-op Stop: %v", err)
	}
	var nilP *Profiles
	if err := nilP.Stop(); err != nil {
		t.Fatalf("nil Stop: %v", err)
	}
}

func TestProfilesCPUAndMem(t *testing.T) {
	dir := t.TempDir()
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	p, err := StartProfiles(cpuPath, memPath)
	if err != nil {
		t.Fatal(err)
	}
	// Some work so the profiles have something to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i * i
	}
	_ = sink
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpuPath, memPath} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	// Stop is safe to call again once everything is flushed.
	if err := p.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}

func TestProfilesMemOnly(t *testing.T) {
	memPath := filepath.Join(t.TempDir(), "mem.pprof")
	p, err := StartProfiles("", memPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(memPath); err != nil || st.Size() == 0 {
		t.Fatalf("mem-only profile missing or empty: %v", err)
	}
}

func TestProfilesBadCPUPath(t *testing.T) {
	_, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), "")
	if err == nil {
		t.Fatal("unwritable cpu path must error")
	}
}

func TestProfilesBadMemPath(t *testing.T) {
	p, err := StartProfiles("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof"))
	if err != nil {
		t.Fatal(err) // the mem path is only touched at Stop
	}
	if err := p.Stop(); err == nil {
		t.Fatal("unwritable mem path must surface at Stop")
	}
}

func TestProfilesDoubleStartCPUFails(t *testing.T) {
	dir := t.TempDir()
	p1, err := StartProfiles(filepath.Join(dir, "a.pprof"), "")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := p1.Stop(); err != nil {
			t.Errorf("stopping first profile: %v", err)
		}
	}()
	// The runtime allows one CPU profile at a time; the second start must
	// fail cleanly without breaking the first.
	if _, err := StartProfiles(filepath.Join(dir, "b.pprof"), ""); err == nil {
		t.Fatal("second concurrent CPU profile must error")
	}
}
