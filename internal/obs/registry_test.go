package obs

import (
	"math"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Counter("c").Add(3)
	if got := r.Counter("c").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	r.Gauge("g").Set(1.5)
	r.Gauge("g").Set(2.5)
	if got := r.Gauge("g").Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

// TestHistogramBucketing pins the bucket-assignment contract: a sample
// lands in the first bucket whose upper bound is >= the value (closed on
// the right), values above every bound land in the overflow cell, and
// exact-boundary samples belong to the boundary's own bucket.
func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 3.9, 4, 4.1, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot().Hists[0]
	// Buckets: <=1, <=2, <=4, overflow. The boundary samples 1, 2, 4
	// land in their own bucket; 4.1 and 100 overflow.
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket counts = %v, want %v", snap.Counts, want)
		}
	}
	if snap.Count != 8 {
		t.Fatalf("count = %d, want 8", snap.Count)
	}
	if snap.Min != 0.5 || snap.Max != 100 {
		t.Fatalf("min/max = %v/%v", snap.Min, snap.Max)
	}
}

func TestHistogramRejectsNaN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1})
	h.Observe(math.NaN())
	h.Observe(2)
	if got := h.Count(); got != 1 {
		t.Fatalf("count = %d, want 1 (NaN must be dropped)", got)
	}
	snap := r.Snapshot().Hists[0]
	if math.IsNaN(snap.Sum) || snap.Sum != 2 {
		t.Fatalf("sum = %v, want 2", snap.Sum)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", nil)
	snap := r.Snapshot().Hists[0]
	if snap.Count != 0 || !math.IsInf(snap.Min, 1) || !math.IsInf(snap.Max, -1) {
		t.Fatalf("empty hist snapshot = %+v", snap)
	}
	if len(snap.Counts) != len(snap.Bounds)+1 {
		t.Fatalf("counts/bounds mismatch: %d vs %d", len(snap.Counts), len(snap.Bounds))
	}
}

func TestHistogramReusedBoundsIgnored(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("h", []float64{1, 2})
	b := r.Histogram("h", []float64{99}) // later bounds ignored
	if a != b {
		t.Fatal("same name must return the same histogram")
	}
	if got := len(r.Snapshot().Hists[0].Bounds); got != 2 {
		t.Fatalf("bounds = %d, want the original 2", got)
	}
}

func TestLinearBuckets(t *testing.T) {
	got := LinearBuckets(0, 0.25, 4)
	want := []float64{0, 0.25, 0.5, 0.75}
	if len(got) != len(want) {
		t.Fatalf("LinearBuckets = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("LinearBuckets = %v, want %v", got, want)
		}
	}
	if got := LinearBuckets(5, -1, 3); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate LinearBuckets = %v", got)
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z", "a", "m"} {
		r.Counter(n).Add(1)
		r.Gauge(n + ".g").Set(1)
		r.Histogram(n+".h", nil).Observe(1)
	}
	snap := r.Snapshot()
	if snap.Len() != 9 {
		t.Fatalf("Len = %d, want 9", snap.Len())
	}
	for i := 1; i < len(snap.Counters); i++ {
		if snap.Counters[i-1].Name > snap.Counters[i].Name {
			t.Fatalf("counters unsorted: %v", snap.Counters)
		}
	}
	for i := 1; i < len(snap.Hists); i++ {
		if snap.Hists[i-1].Name > snap.Hists[i].Name {
			t.Fatalf("hists unsorted: %v", snap.Hists)
		}
	}
}

// TestHistogramQuantileContract pins the quantile semantics: NaN when
// empty, exact at p=0/p=1 (the observed extremes), linear interpolation
// inside a bucket, and clamping into [Min, Max].
func TestHistogramQuantileContract(t *testing.T) {
	r := NewRegistry()
	empty := r.Histogram("empty", []float64{1})
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram quantile must be NaN")
	}
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Error("nil histogram quantile must be NaN")
	}

	// 100 uniform samples 1..100 over bounds 10,20,...,100: each bucket
	// holds exactly 10 samples, so quantiles interpolate almost exactly.
	h := r.Histogram("u", LinearBuckets(10, 10, 10))
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %v, want observed min 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("p1 = %v, want observed max 100", got)
	}
	for _, tc := range []struct{ p, want, tol float64 }{
		{0.50, 50, 2}, {0.90, 90, 2}, {0.99, 99, 2}, {0.25, 25, 2},
	} {
		if got := h.Quantile(tc.p); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("p%g = %v, want %v +/- %v", tc.p*100, got, tc.want, tc.tol)
		}
	}
	if !math.IsNaN(h.Quantile(math.NaN())) {
		t.Error("NaN p must yield NaN")
	}

	// The snapshot view must agree with the live view.
	snap := r.Snapshot()
	for _, s := range snap.Hists {
		if s.Name != "u" {
			continue
		}
		if live, fromSnap := h.Quantile(0.9), s.Quantile(0.9); live != fromSnap {
			t.Errorf("live %v vs snapshot %v quantile disagree", live, fromSnap)
		}
	}
}

// TestHistogramQuantileClamped: a single-bucket histogram cannot
// resolve ranks, but its estimates must stay inside [Min, Max].
func TestHistogramQuantileClamped(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("one", []float64{1000})
	h.Observe(5)
	h.Observe(7)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if got := h.Quantile(p); got < 5 || got > 7 {
			t.Errorf("p%g = %v, outside observed [5, 7]", p*100, got)
		}
	}
	// Overflow-only data: the top bucket's edges are (last bound, Max].
	o := r.Histogram("over", []float64{1})
	o.Observe(50)
	o.Observe(150)
	if got := o.Quantile(0.5); got < 50 || got > 150 {
		t.Errorf("overflow p50 = %v, outside observed [50, 150]", got)
	}
}
