package obs

import "time"

// Span is one timed phase of a computation. Spans form a tree (Child),
// carry ordered semantic fields set by the instrumented code, and emit a
// single JSONL event when ended. All methods are no-ops on a nil span,
// so call sites never branch on whether tracing is enabled.
//
// A span's id and parent id are assigned in Start order; because the
// instrumented algorithms are deterministic, the ids — unlike the
// timestamps — are part of the deterministic event content.
//
// Ownership: End returns the span to its trace's free list, so a span
// must not be touched after End. Methods on an ended span are no-ops
// until the trace recycles it, which keeps the common
// defer-End-then-fall-out-of-scope pattern safe.
type Span struct {
	t      *Trace
	name   string
	id     int
	parent int
	begin  time.Time
	fields []Field
	ended  bool
}

// fieldKind discriminates the Field union.
type fieldKind int

const (
	fieldInt fieldKind = iota
	fieldFloat
	fieldStr
)

// Field is one key/value pair attached to a span, kept in insertion
// order so the encoded event is reproducible.
type Field struct {
	Key  string
	kind fieldKind
	i    int64
	f    float64
	s    string
}

// Child opens a sub-span under s.
func (s *Span) Child(name string) *Span {
	if s == nil || s.ended {
		return nil
	}
	return s.t.newSpan(name, s.id)
}

// SetInt attaches an integer field (deterministic event content).
func (s *Span) SetInt(key string, v int64) {
	if s == nil || s.ended {
		return
	}
	//mdglint:allow-alloc(field-slice growth is amortized; recycled spans keep their capacity)
	s.fields = append(s.fields, Field{Key: key, kind: fieldInt, i: v})
}

// SetFloat attaches a float field (deterministic event content; encoded
// with the shortest round-trip representation).
func (s *Span) SetFloat(key string, v float64) {
	if s == nil || s.ended {
		return
	}
	//mdglint:allow-alloc(field-slice growth is amortized; recycled spans keep their capacity)
	s.fields = append(s.fields, Field{Key: key, kind: fieldFloat, f: v})
}

// SetStr attaches a string field.
func (s *Span) SetStr(key, v string) {
	if s == nil || s.ended {
		return
	}
	//mdglint:allow-alloc(field-slice growth is amortized; recycled spans keep their capacity)
	s.fields = append(s.fields, Field{Key: key, kind: fieldStr, s: v})
}

// Count adds delta to the named counter in the trace's registry.
func (s *Span) Count(name string, delta int64) {
	if s == nil || s.ended {
		return
	}
	s.t.Registry().Counter(name).Add(delta)
}

// Gauge sets the named gauge in the trace's registry.
func (s *Span) Gauge(name string, v float64) {
	if s == nil || s.ended {
		return
	}
	s.t.Registry().Gauge(name).Set(v)
}

// Observe records v into the named histogram in the trace's registry
// (created with default buckets on first use).
func (s *Span) Observe(name string, v float64) {
	if s == nil || s.ended {
		return
	}
	s.t.Registry().Histogram(name, nil).Observe(v)
}

// End closes the span, aggregates its duration, emits its event, and
// recycles the span into the trace's free list. Ending twice (or ending
// a nil span) is a no-op; no method may be called on a span after End.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.t.endSpan(s)
}
