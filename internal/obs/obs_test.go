package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// runWorkload drives a fixed span/metric sequence against a fresh trace
// and returns the raw JSONL. Two calls must canonicalise identically.
func runWorkload(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := New(&buf)
	root := tr.Start("plan")
	sp := root.Child("cover")
	sp.SetInt("chosen", 12)
	sp.SetFloat("ratio", 0.5)
	sp.SetStr("strategy", "sensor-sites")
	sp.Observe("cover.gain", 3)
	sp.Observe("cover.gain", 17)
	sp.Count("cover.iters", 2)
	sp.Gauge("planner.stops", 12)
	sp.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func canonicalize(t *testing.T, raw []byte) string {
	t.Helper()
	var out []string
	for _, line := range bytes.Split(raw, []byte("\n")) {
		c, err := CanonicalLine(line)
		if err != nil {
			t.Fatalf("CanonicalLine(%q): %v", line, err)
		}
		if c != nil {
			out = append(out, string(c))
		}
	}
	return strings.Join(out, "\n")
}

func TestTraceDeterministicAfterCanonicalisation(t *testing.T) {
	a := canonicalize(t, runWorkload(t))
	b := canonicalize(t, runWorkload(t))
	if a != b {
		t.Fatalf("canonical traces differ:\n%s\n---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty canonical trace")
	}
}

func TestTraceEventShape(t *testing.T) {
	raw := runWorkload(t)
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	// 2 span events + 1 counter + 1 gauge + 1 histogram.
	if len(lines) != 5 {
		t.Fatalf("want 5 events, got %d:\n%s", len(lines), raw)
	}
	var first map[string]any
	if err := json.Unmarshal(lines[0], &first); err != nil {
		t.Fatalf("event not JSON: %v", err)
	}
	// The child span ends first; it must reference its parent and carry
	// both timing keys.
	if first["ev"] != "span" || first["span"] != "cover" {
		t.Fatalf("first event = %v", first)
	}
	if first["parent"] != float64(1) {
		t.Fatalf("child parent = %v, want 1", first["parent"])
	}
	for _, k := range TimingKeys() {
		if _, ok := first[k]; !ok {
			t.Fatalf("span event missing timing key %q: %v", k, first)
		}
	}
	fields, ok := first["fields"].(map[string]any)
	if !ok || fields["chosen"] != float64(12) || fields["strategy"] != "sensor-sites" {
		t.Fatalf("span fields = %v", first["fields"])
	}
	// Metric events close the trace, sorted by name within each type.
	var names []string
	for _, l := range lines[2:] {
		var m map[string]any
		if err := json.Unmarshal(l, &m); err != nil {
			t.Fatalf("metric event not JSON: %v", err)
		}
		if m["ev"] != "metric" {
			t.Fatalf("tail event = %v", m)
		}
		names = append(names, m["metric"].(string))
	}
	want := []string{"cover.iters", "planner.stops", "cover.gain"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("metric order = %v, want %v", names, want)
		}
	}
}

func TestCanonicalLineStripsOnlyTimingKeys(t *testing.T) {
	in := []byte(`{"ev":"span","seq":1,"span":"x","id":1,"t_ns":123,"dur_ns":456}`)
	got, err := CanonicalLine(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"ev":"span","id":1,"seq":1,"span":"x"}`
	if string(got) != want {
		t.Fatalf("canonical = %s, want %s", got, want)
	}
	if c, err := CanonicalLine([]byte("  \n")); err != nil || c != nil {
		t.Fatalf("blank line: %v %v", c, err)
	}
	if _, err := CanonicalLine([]byte("not json")); err == nil {
		t.Fatal("want error for malformed line")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil trace must yield nil span")
	}
	// None of these may panic.
	sp.SetInt("a", 1)
	sp.SetFloat("b", 2)
	sp.SetStr("c", "d")
	sp.Observe("h", 1)
	sp.Count("c", 1)
	sp.Gauge("g", 1)
	sp.Child("y").End()
	sp.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Summary() != nil || tr.Err() != nil {
		t.Fatal("nil trace aggregates must be empty")
	}
	var reg *Registry
	reg.Counter("c").Add(1)
	reg.Gauge("g").Set(1)
	reg.Histogram("h", nil).Observe(1)
	if reg.Snapshot().Len() != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestAggregateOnlyTrace(t *testing.T) {
	tr := New(nil) // -metrics without -trace
	sp := tr.Start("phase")
	sp.End()
	sp2 := tr.Start("phase")
	sp2.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sum := tr.Summary()
	if len(sum) != 1 || sum[0].Name != "phase" || sum[0].Count != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum[0].TotalNs < 0 {
		t.Fatalf("negative duration %d", sum[0].TotalNs)
	}
}

// failWriter fails after the first write so the error path is exercised.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, errWrite
	}
	return len(p), nil
}

var errWrite = errSentinel("write failed")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }

func TestTraceWriteErrorSurfacesOnClose(t *testing.T) {
	tr := New(&failWriter{})
	tr.Start("a").End()
	tr.Start("b").End() // second write fails
	if err := tr.Close(); err == nil {
		t.Fatal("want write error from Close")
	}
	if tr.Err() == nil {
		t.Fatal("want write error from Err")
	}
}

func TestProfilesLifecycle(t *testing.T) {
	dir := t.TempDir()
	p, err := StartProfiles(dir+"/cpu.pprof", dir+"/mem.pprof")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	// Nil and empty configurations are no-ops.
	var nilP *Profiles
	if err := nilP.Stop(); err != nil {
		t.Fatal(err)
	}
	empty, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.Stop(); err != nil {
		t.Fatal(err)
	}
}
