package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles manages the optional -cpuprofile/-memprofile outputs the
// measurement CLIs expose. Either path may be empty; Stop is nil-safe,
// so the CLIs can unconditionally defer it.
type Profiles struct {
	cpu     *os.File
	memPath string
}

// StartProfiles begins CPU profiling into cpuPath (when non-empty) and
// remembers memPath for a heap snapshot at Stop. On error nothing is
// left running and no files are leaked.
func StartProfiles(cpuPath, memPath string) (*Profiles, error) {
	p := &Profiles{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close() // the profile error is the one to report
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		p.cpu = f
	}
	return p, nil
}

// Stop finishes the CPU profile and writes the heap profile. It returns
// the first error; call it exactly once (idempotent on the CPU side
// because the file handle is cleared).
func (p *Profiles) Stop() error {
	if p == nil {
		return nil
	}
	var first error
	if p.cpu != nil {
		pprof.StopCPUProfile()
		if err := p.cpu.Close(); err != nil {
			first = fmt.Errorf("obs: cpu profile: %w", err)
		}
		p.cpu = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("obs: mem profile: %w", err)
			}
			return first
		}
		runtime.GC() // materialise a settled heap before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
			first = fmt.Errorf("obs: mem profile: %w", err)
		}
		if err := f.Close(); err != nil && first == nil {
			first = fmt.Errorf("obs: mem profile: %w", err)
		}
		p.memPath = ""
	}
	return first
}
