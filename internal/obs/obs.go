// Package obs is the repo's observability layer: hierarchical phase
// spans, typed metrics, and a deterministic JSONL event sink for the
// planner and simulator hot paths.
//
// Design constraints, in order:
//
//  1. Determinism. Every instrumented package (cover, tsp, shdgp, sim)
//     is subject to the mdglint determinism gate: two runs on the same
//     seed must produce identical algorithmic output. Trace events
//     therefore separate *semantic* fields (span names, ids, sequence
//     numbers, counters — all derived from the algorithm's own state)
//     from *timing* fields. Timing is carried exclusively in the keys
//     "t_ns" and "dur_ns", and CanonicalLine strips exactly those, so
//     two traces of the same run compare equal after canonicalisation.
//     This package is the only one allowed to read the wall clock (the
//     determinism analyzer's allowlist enforces that), and the clock
//     never influences which events are emitted or in what order.
//
//  2. Zero cost when disabled. Every method is safe on nil receivers:
//     a nil *Trace yields nil *Span children and nil metrics, and all
//     their methods are no-ops, so instrumented hot paths pay one
//     pointer test per call when tracing is off.
//
//  3. Zero allocations when enabled, at steady state. Span enter/exit
//     is on the planners' hot path (//mdglint:hotpath roots below), so
//     ended spans return to a per-trace free list, field slices and the
//     JSONL line buffer are reused, and the encoder never touches fmt
//     or encoding/json. Once the pools have grown, a Start/Child/Set*/
//     End round trip allocates nothing — pinned by
//     BenchmarkSpanSteadyState and the alloccheck/escape gates.
//     The flip side is an ownership rule: a *Span is dead after End —
//     using it afterwards is a no-op at best and, once the trace has
//     recycled it, would write into an unrelated span.
//
//  4. Stdlib only, like the rest of the module.
//
// Typical wiring (see cmd/mdgplan):
//
//	tr, _ := obs.New(file)          // or obs.New(nil) for aggregate-only
//	opts.Obs = tr
//	... run the planner ...
//	err := tr.Close()               // flush events + metric snapshot
//	report.Write(os.Stderr, tr)     // human summary table
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Trace owns an event stream and its metric registry. The zero value is
// not useful; construct with New. All methods are nil-safe and
// goroutine-safe.
type Trace struct {
	mu     sync.Mutex
	w      io.Writer // nil: aggregate-only (summary + registry, no JSONL)
	reg    *Registry
	start  time.Time
	nextID int // span ids, 1-based; 0 means "no parent"
	seq    int // event sequence numbers, 1-based
	err    error
	closed bool
	agg    map[string]*SpanStat
	free   []*Span  // recycled spans; top of stack is the hottest
	line   jsonlBuf // reusable event-encoding buffer (guarded by mu)
	hook   SpanHook // span lifecycle observer (guarded by mu; invoked outside it)
}

// SpanHook observes span lifecycle edges: it is called once when a span
// starts (end=false) and once when it ends (end=true), with the span's
// name and deterministic id. Hooks run outside the trace's lock on the
// goroutine that started or ended the span, so a hook may itself use the
// trace; concurrent spans mean a hook must be safe for concurrent calls.
// The engine seam turns these edges into streamed progress events.
type SpanHook func(name string, id int, end bool)

// SetSpanHook installs fn as the trace's span hook (nil removes it). One
// hook is active at a time; installing a hook while spans are in flight
// is safe, but edges that already passed are not replayed. Nil-safe.
func (t *Trace) SetSpanHook(fn SpanHook) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.hook = fn
	t.mu.Unlock()
}

// New returns a Trace writing JSONL events to w. A nil w is valid and
// keeps only in-memory aggregates (span summary and metric registry),
// which is what -metrics without -trace uses.
func New(w io.Writer) *Trace {
	// time.Now is legal here and only here: internal/obs is the
	// determinism analyzer's wall-clock allowlist, and every reading
	// ends up in the strippable t_ns/dur_ns fields.
	return &Trace{
		w:     w,
		reg:   NewRegistry(),
		start: time.Now(),
		agg:   make(map[string]*SpanStat),
	}
}

// Registry returns the trace's metric registry (nil for a nil trace).
func (t *Trace) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Start opens a root-level span. End it to emit its event.
func (t *Trace) Start(name string) *Span {
	return t.newSpan(name, 0)
}

// newSpan is the span-enter hot path: it assigns the next id and
// recycles a span from the free list, allocating only while the pool
// grows to the trace's maximum concurrent span depth.
//
//mdglint:hotpath
func (t *Trace) newSpan(name string, parent int) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	hook := t.hook
	var s *Span
	if n := len(t.free); n > 0 {
		s = t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
	}
	t.mu.Unlock()
	if s == nil {
		//mdglint:allow-alloc(span pool growth: one allocation per unit of concurrent span depth, recycled forever after)
		s = &Span{}
	}
	s.t = t
	s.name = name
	s.id = id
	s.parent = parent
	s.fields = s.fields[:0]
	s.ended = false
	if hook != nil {
		hook(name, id, false)
	}
	s.begin = time.Now()
	return s
}

// SpanStat is one row of the span summary: how often a span name was
// entered and the total wall time spent inside it.
type SpanStat struct {
	Name    string
	Count   int
	TotalNs int64
}

// Summary returns per-span-name aggregates sorted by name. It is valid
// before and after Close, and returns nil for a nil trace.
func (t *Trace) Summary() []SpanStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.agg))
	//mdglint:ignore determinism keys are collected and then sorted; the emitted order is independent of map iteration order
	for name := range t.agg {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]SpanStat, 0, len(names))
	for _, name := range names {
		out = append(out, *t.agg[name])
	}
	return out
}

// Err returns the first write error the trace encountered (nil-safe).
func (t *Trace) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close emits one "metric" event per registry entry (sorted by name, so
// the tail of the trace is deterministic) and returns the first error
// seen on the stream. Closing a nil or already-closed trace is a no-op.
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	snap := t.reg.Snapshot()
	for _, c := range snap.Counters {
		t.emitLocked(encodeCounter(&t.line, t.nextSeqLocked(), c))
	}
	for _, g := range snap.Gauges {
		t.emitLocked(encodeGauge(&t.line, t.nextSeqLocked(), g))
	}
	for _, h := range snap.Hists {
		t.emitLocked(encodeHist(&t.line, t.nextSeqLocked(), h))
	}
	return t.err
}

func (t *Trace) nextSeqLocked() int {
	t.seq++
	return t.seq
}

// emitLocked writes one already-encoded JSONL line. Callers hold t.mu.
func (t *Trace) emitLocked(line []byte) {
	if t.w == nil || t.err != nil {
		return
	}
	if _, err := t.w.Write(line); err != nil {
		//mdglint:allow-alloc(trace write failure path; never taken on a healthy stream)
		t.err = fmt.Errorf("obs: trace write: %w", err)
	}
}

// endSpan is the span-exit hot path: it folds the span's duration into
// the aggregate, encodes its event into the reused line buffer, and
// recycles the span. The wall clock is read before taking the lock so
// contention never inflates a span's own duration.
//
//mdglint:hotpath
func (t *Trace) endSpan(s *Span) {
	now := time.Now()
	durNs := now.Sub(s.begin).Nanoseconds()
	tNs := s.begin.Sub(t.start).Nanoseconds()
	name, id := s.name, s.id
	t.mu.Lock()
	st := t.agg[s.name]
	if st == nil {
		//mdglint:allow-alloc(one aggregate row per distinct span name, reused for every later span)
		st = &SpanStat{Name: s.name}
		t.agg[s.name] = st
	}
	st.Count++
	st.TotalNs += durNs
	if t.w != nil && t.err == nil {
		t.emitLocked(encodeSpan(&t.line, t.nextSeqLocked(), s, tNs, durNs))
	} else {
		// Aggregate-only traces still burn a sequence number per event so
		// the ids and seqs match a file-backed trace of the same run.
		t.nextSeqLocked()
	}
	// Recycle: drop the trace pointer last so a stale use-after-End is a
	// nil-receiver no-op until the span is handed out again.
	s.t = nil
	s.name = ""
	//mdglint:allow-alloc(free-list growth is amortized; steady state pops and pushes within retained capacity)
	t.free = append(t.free, s)
	hook := t.hook
	t.mu.Unlock()
	if hook != nil {
		hook(name, id, true)
	}
}
