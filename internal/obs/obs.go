// Package obs is the repo's observability layer: hierarchical phase
// spans, typed metrics, and a deterministic JSONL event sink for the
// planner and simulator hot paths.
//
// Design constraints, in order:
//
//  1. Determinism. Every instrumented package (cover, tsp, shdgp, sim)
//     is subject to the mdglint determinism gate: two runs on the same
//     seed must produce identical algorithmic output. Trace events
//     therefore separate *semantic* fields (span names, ids, sequence
//     numbers, counters — all derived from the algorithm's own state)
//     from *timing* fields. Timing is carried exclusively in the keys
//     "t_ns" and "dur_ns", and CanonicalLine strips exactly those, so
//     two traces of the same run compare equal after canonicalisation.
//     This package is the only one allowed to read the wall clock (the
//     determinism analyzer's allowlist enforces that), and the clock
//     never influences which events are emitted or in what order.
//
//  2. Zero cost when disabled. Every method is safe on nil receivers:
//     a nil *Trace yields nil *Span children and nil metrics, and all
//     their methods are no-ops, so instrumented hot paths pay one
//     pointer test per call when tracing is off.
//
//  3. Stdlib only, like the rest of the module.
//
// Typical wiring (see cmd/mdgplan):
//
//	tr, _ := obs.New(file)          // or obs.New(nil) for aggregate-only
//	opts.Obs = tr
//	... run the planner ...
//	err := tr.Close()               // flush events + metric snapshot
//	report.Write(os.Stderr, tr)     // human summary table
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Trace owns an event stream and its metric registry. The zero value is
// not useful; construct with New. All methods are nil-safe and
// goroutine-safe.
type Trace struct {
	mu     sync.Mutex
	w      io.Writer // nil: aggregate-only (summary + registry, no JSONL)
	reg    *Registry
	start  time.Time
	nextID int // span ids, 1-based; 0 means "no parent"
	seq    int // event sequence numbers, 1-based
	err    error
	closed bool
	agg    map[string]*SpanStat
}

// New returns a Trace writing JSONL events to w. A nil w is valid and
// keeps only in-memory aggregates (span summary and metric registry),
// which is what -metrics without -trace uses.
func New(w io.Writer) *Trace {
	// time.Now is legal here and only here: internal/obs is the
	// determinism analyzer's wall-clock allowlist, and every reading
	// ends up in the strippable t_ns/dur_ns fields.
	return &Trace{
		w:     w,
		reg:   NewRegistry(),
		start: time.Now(),
		agg:   make(map[string]*SpanStat),
	}
}

// Registry returns the trace's metric registry (nil for a nil trace).
func (t *Trace) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Start opens a root-level span. End it to emit its event.
func (t *Trace) Start(name string) *Span {
	return t.newSpan(name, 0)
}

func (t *Trace) newSpan(name string, parent int) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{
		t:      t,
		name:   name,
		id:     id,
		parent: parent,
		begin:  time.Now(),
	}
}

// SpanStat is one row of the span summary: how often a span name was
// entered and the total wall time spent inside it.
type SpanStat struct {
	Name    string
	Count   int
	TotalNs int64
}

// Summary returns per-span-name aggregates sorted by name. It is valid
// before and after Close, and returns nil for a nil trace.
func (t *Trace) Summary() []SpanStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.agg))
	//mdglint:ignore determinism keys are collected and then sorted; the emitted order is independent of map iteration order
	for name := range t.agg {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]SpanStat, 0, len(names))
	for _, name := range names {
		out = append(out, *t.agg[name])
	}
	return out
}

// Err returns the first write error the trace encountered (nil-safe).
func (t *Trace) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close emits one "metric" event per registry entry (sorted by name, so
// the tail of the trace is deterministic) and returns the first error
// seen on the stream. Closing a nil or already-closed trace is a no-op.
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	snap := t.reg.Snapshot()
	for _, c := range snap.Counters {
		t.emitLocked(encodeCounter(t.nextSeqLocked(), c))
	}
	for _, g := range snap.Gauges {
		t.emitLocked(encodeGauge(t.nextSeqLocked(), g))
	}
	for _, h := range snap.Hists {
		t.emitLocked(encodeHist(t.nextSeqLocked(), h))
	}
	return t.err
}

func (t *Trace) nextSeqLocked() int {
	t.seq++
	return t.seq
}

// emitLocked writes one already-encoded JSONL line. Callers hold t.mu.
func (t *Trace) emitLocked(line []byte) {
	if t.w == nil || t.err != nil {
		return
	}
	if _, err := t.w.Write(line); err != nil {
		t.err = fmt.Errorf("obs: trace write: %w", err)
	}
}

// endSpan records the span's aggregate and emits its event.
func (t *Trace) endSpan(s *Span) {
	now := time.Now()
	durNs := now.Sub(s.begin).Nanoseconds()
	tNs := s.begin.Sub(t.start).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.agg[s.name]
	if st == nil {
		st = &SpanStat{Name: s.name}
		t.agg[s.name] = st
	}
	st.Count++
	st.TotalNs += durNs
	t.emitLocked(encodeSpan(t.nextSeqLocked(), s, tNs, durNs))
}
