package obs

import "time"

// Watch is a started wall-clock stopwatch. The few places that
// legitimately measure real time outside a span tree — the mdgbench
// scale rows, the warm-start speedup test — route through it, so the
// determinism lint can keep every other package off the wall clock.
type Watch struct{ start time.Time }

// StartWatch starts a stopwatch.
func StartWatch() Watch { return Watch{start: time.Now()} }

// ElapsedNs returns nanoseconds since the watch started (monotonic).
func (w Watch) ElapsedNs() int64 { return time.Since(w.start).Nanoseconds() }
