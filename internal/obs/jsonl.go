package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// This file defines the trace wire format: one JSON object per line,
// keys hand-encoded in a fixed order so that byte-for-byte comparison
// of canonicalised traces is meaningful.
//
// Event shapes:
//
//	{"ev":"span","seq":4,"span":"cover","id":3,"parent":1,
//	 "fields":{"chosen":12,...},"t_ns":1234,"dur_ns":5678}
//	{"ev":"metric","seq":9,"metric":"cover.gain","type":"hist",
//	 "count":12,"sum":80,"min":1,"max":20,"bounds":[...],"counts":[...]}
//	{"ev":"metric","seq":10,"metric":"planner.stops","type":"gauge","value":12}
//
// Determinism contract: TimingKeys lists the only keys whose values may
// differ between two runs of the same seeded computation; CanonicalLine
// removes them. Everything else — including "seq", which is assigned in
// event order — must be identical across runs, and the cli_test
// double-run regression test enforces exactly that.

// TimingKeys returns the JSONL keys that carry wall-clock readings and
// are therefore excluded from determinism comparisons.
func TimingKeys() []string { return []string{"t_ns", "dur_ns"} }

// CanonicalLine parses one trace line and re-encodes it without the
// timing keys and with all remaining keys sorted, so equal semantic
// content yields equal bytes regardless of when it was recorded.
func CanonicalLine(line []byte) ([]byte, error) {
	if len(bytes.TrimSpace(line)) == 0 {
		return nil, nil
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(line, &m); err != nil {
		return nil, fmt.Errorf("obs: bad trace line: %w", err)
	}
	for _, k := range TimingKeys() {
		delete(m, k)
	}
	keys := make([]string, 0, len(m))
	//mdglint:ignore determinism keys are collected and then sorted; the canonical encoding is map-order independent
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		buf.Write(m[k])
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// jsonlBuf accumulates one hand-ordered JSON object line.
type jsonlBuf struct {
	buf   bytes.Buffer
	first bool
}

func newLine() *jsonlBuf {
	b := &jsonlBuf{first: true}
	b.buf.WriteByte('{')
	return b
}

func (b *jsonlBuf) key(k string) {
	if !b.first {
		b.buf.WriteByte(',')
	}
	b.first = false
	b.buf.WriteByte('"')
	b.buf.WriteString(k) // keys are controlled identifiers; no escaping needed
	b.buf.WriteString(`":`)
}

func (b *jsonlBuf) str(k, v string) {
	b.key(k)
	vb, err := json.Marshal(v)
	if err != nil {
		// Marshalling a string cannot fail; keep the line well-formed anyway.
		vb = []byte(`""`)
	}
	b.buf.Write(vb)
}

func (b *jsonlBuf) int(k string, v int64) {
	b.key(k)
	b.buf.WriteString(strconv.FormatInt(v, 10))
}

func (b *jsonlBuf) float(k string, v float64) {
	b.key(k)
	b.buf.WriteString(formatFloat(v))
}

func (b *jsonlBuf) floats(k string, vs []float64) {
	b.key(k)
	b.buf.WriteByte('[')
	for i, v := range vs {
		if i > 0 {
			b.buf.WriteByte(',')
		}
		b.buf.WriteString(formatFloat(v))
	}
	b.buf.WriteByte(']')
}

func (b *jsonlBuf) ints(k string, vs []int64) {
	b.key(k)
	b.buf.WriteByte('[')
	for i, v := range vs {
		if i > 0 {
			b.buf.WriteByte(',')
		}
		b.buf.WriteString(strconv.FormatInt(v, 10))
	}
	b.buf.WriteByte(']')
}

func (b *jsonlBuf) done() []byte {
	b.buf.WriteString("}\n")
	return b.buf.Bytes()
}

// formatFloat encodes a float deterministically as valid JSON. The
// shortest round-trip form ('g', -1) is canonical; non-finite values,
// which JSON cannot carry as numbers, become quoted strings.
func formatFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return strconv.Quote(strconv.FormatFloat(v, 'g', -1, 64))
	}
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// 'g' can produce exponent forms like "1e+06", which are valid JSON.
	return s
}

// encodeSpan renders a span-end event.
func encodeSpan(seq int, s *Span, tNs, durNs int64) []byte {
	b := newLine()
	b.str("ev", "span")
	b.int("seq", int64(seq))
	b.str("span", s.name)
	b.int("id", int64(s.id))
	if s.parent != 0 {
		b.int("parent", int64(s.parent))
	}
	if len(s.fields) > 0 {
		b.key("fields")
		b.buf.WriteByte('{')
		for i, f := range s.fields {
			if i > 0 {
				b.buf.WriteByte(',')
			}
			kb, err := json.Marshal(f.Key)
			if err != nil {
				kb = []byte(`""`)
			}
			b.buf.Write(kb)
			b.buf.WriteByte(':')
			switch f.kind {
			case fieldInt:
				b.buf.WriteString(strconv.FormatInt(f.i, 10))
			case fieldFloat:
				b.buf.WriteString(formatFloat(f.f))
			case fieldStr:
				vb, err := json.Marshal(f.s)
				if err != nil {
					vb = []byte(`""`)
				}
				b.buf.Write(vb)
			}
		}
		b.buf.WriteByte('}')
	}
	// Timing keys last, and only here: everything above is deterministic.
	b.int("t_ns", tNs)
	b.int("dur_ns", durNs)
	return b.done()
}

// encodeCounter renders one counter metric event.
func encodeCounter(seq int, c CounterSnap) []byte {
	b := newLine()
	b.str("ev", "metric")
	b.int("seq", int64(seq))
	b.str("metric", c.Name)
	b.str("type", "counter")
	b.int("value", c.Value)
	return b.done()
}

// encodeGauge renders one gauge metric event.
func encodeGauge(seq int, g GaugeSnap) []byte {
	b := newLine()
	b.str("ev", "metric")
	b.int("seq", int64(seq))
	b.str("metric", g.Name)
	b.str("type", "gauge")
	b.float("value", g.Value)
	return b.done()
}

// encodeHist renders one histogram metric event.
func encodeHist(seq int, h HistSnap) []byte {
	b := newLine()
	b.str("ev", "metric")
	b.int("seq", int64(seq))
	b.str("metric", h.Name)
	b.str("type", "hist")
	b.int("count", h.Count)
	b.float("sum", h.Sum)
	if h.Count > 0 {
		b.float("min", h.Min)
		b.float("max", h.Max)
	}
	b.floats("bounds", h.Bounds)
	b.ints("counts", h.Counts)
	return b.done()
}
