package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// This file defines the trace wire format: one JSON object per line,
// keys hand-encoded in a fixed order so that byte-for-byte comparison
// of canonicalised traces is meaningful.
//
// Event shapes:
//
//	{"ev":"span","seq":4,"span":"cover","id":3,"parent":1,
//	 "fields":{"chosen":12,...},"t_ns":1234,"dur_ns":5678}
//	{"ev":"metric","seq":9,"metric":"cover.gain","type":"hist",
//	 "count":12,"sum":80,"min":1,"max":20,"bounds":[...],"counts":[...]}
//	{"ev":"metric","seq":10,"metric":"planner.stops","type":"gauge","value":12}
//
// Determinism contract: TimingKeys lists the only keys whose values may
// differ between two runs of the same seeded computation; CanonicalLine
// removes them. Everything else — including "seq", which is assigned in
// event order — must be identical across runs, and the cli_test
// double-run regression test enforces exactly that.
//
// Allocation contract: encodeSpan sits on the span-exit hot path, so the
// encoder appends into a caller-owned scratch buffer (the Trace's line
// buffer, reused across events) and never reaches for fmt or
// encoding/json. The strconv Append* family and the local string escaper
// write in place; at steady state — once the buffer has grown to the
// largest event — encoding an event allocates nothing.

// TimingKeys returns the JSONL keys that carry wall-clock readings and
// are therefore excluded from determinism comparisons.
func TimingKeys() []string { return []string{"t_ns", "dur_ns"} }

// CanonicalLine parses one trace line and re-encodes it without the
// timing keys and with all remaining keys sorted, so equal semantic
// content yields equal bytes regardless of when it was recorded.
func CanonicalLine(line []byte) ([]byte, error) {
	if len(bytes.TrimSpace(line)) == 0 {
		return nil, nil
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(line, &m); err != nil {
		return nil, fmt.Errorf("obs: bad trace line: %w", err)
	}
	for _, k := range TimingKeys() {
		delete(m, k)
	}
	keys := make([]string, 0, len(m))
	//mdglint:ignore determinism keys are collected and then sorted; the canonical encoding is map-order independent
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		buf.Write(m[k])
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// jsonlBuf accumulates one hand-ordered JSON object line into a reusable
// byte slice. reset starts a new line in the same backing array, so a
// long-lived jsonlBuf stops allocating once it has seen its largest
// event.
type jsonlBuf struct {
	buf   []byte
	first bool
}

func (b *jsonlBuf) reset() {
	//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
	b.buf = append(b.buf[:0], '{')
	b.first = true
}

func (b *jsonlBuf) key(k string) {
	if !b.first {
		//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
		b.buf = append(b.buf, ',')
	}
	b.first = false
	//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
	b.buf = append(b.buf, '"')
	//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
	b.buf = append(b.buf, k...) // keys are controlled identifiers; no escaping needed
	//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
	b.buf = append(b.buf, '"', ':')
}

func (b *jsonlBuf) str(k, v string) {
	b.key(k)
	b.buf = appendJSONString(b.buf, v)
}

func (b *jsonlBuf) int(k string, v int64) {
	b.key(k)
	//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
	b.buf = strconv.AppendInt(b.buf, v, 10)
}

func (b *jsonlBuf) float(k string, v float64) {
	b.key(k)
	b.buf = appendJSONFloat(b.buf, v)
}

func (b *jsonlBuf) floats(k string, vs []float64) {
	b.key(k)
	//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
	b.buf = append(b.buf, '[')
	for i, v := range vs {
		if i > 0 {
			//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
			b.buf = append(b.buf, ',')
		}
		b.buf = appendJSONFloat(b.buf, v)
	}
	//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
	b.buf = append(b.buf, ']')
}

func (b *jsonlBuf) ints(k string, vs []int64) {
	b.key(k)
	//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
	b.buf = append(b.buf, '[')
	for i, v := range vs {
		if i > 0 {
			//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
			b.buf = append(b.buf, ',')
		}
		//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
		b.buf = strconv.AppendInt(b.buf, v, 10)
	}
	//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
	b.buf = append(b.buf, ']')
}

// done closes the object and returns the line. The returned slice
// aliases the buffer: consume it before the next reset.
func (b *jsonlBuf) done() []byte {
	//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
	b.buf = append(b.buf, '}', '\n')
	return b.buf
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a quoted JSON string, escaping quotes,
// backslashes and control characters. Span names, field keys and field
// values are expected to be valid UTF-8 (they are programmer-chosen
// identifiers); bytes >= 0x20 other than '"' and '\\' pass through
// unchanged.
func appendJSONString(dst []byte, s string) []byte {
	//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
			dst = append(dst, '\\', c)
		case c >= 0x20:
			//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
			dst = append(dst, c)
		case c == '\n':
			//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
			dst = append(dst, '\\', 'n')
		case c == '\t':
			//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
			dst = append(dst, '\\', 't')
		case c == '\r':
			//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
			dst = append(dst, '\\', 'r')
		default:
			//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
	}
	//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
	return append(dst, '"')
}

// appendJSONFloat appends a float encoded deterministically as valid
// JSON. The shortest round-trip form ('g', -1) is canonical; non-finite
// values, which JSON cannot carry as numbers, become quoted strings.
func appendJSONFloat(dst []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
		dst = append(dst, '"')
		//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
		//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
		return append(dst, '"')
	}
	// 'g' can produce exponent forms like "1e+06", which are valid JSON.
	//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// encodeSpan renders a span-end event into b (reset first).
func encodeSpan(b *jsonlBuf, seq int, s *Span, tNs, durNs int64) []byte {
	b.reset()
	b.str("ev", "span")
	b.int("seq", int64(seq))
	b.str("span", s.name)
	b.int("id", int64(s.id))
	if s.parent != 0 {
		b.int("parent", int64(s.parent))
	}
	if len(s.fields) > 0 {
		b.key("fields")
		//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
		b.buf = append(b.buf, '{')
		for i := range s.fields {
			f := &s.fields[i]
			if i > 0 {
				//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
				b.buf = append(b.buf, ',')
			}
			b.buf = appendJSONString(b.buf, f.Key)
			//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
			b.buf = append(b.buf, ':')
			switch f.kind {
			case fieldInt:
				//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
				b.buf = strconv.AppendInt(b.buf, f.i, 10)
			case fieldFloat:
				b.buf = appendJSONFloat(b.buf, f.f)
			case fieldStr:
				b.buf = appendJSONString(b.buf, f.s)
			}
		}
		//mdglint:allow-alloc(append writes into the trace's reused line buffer; growth is amortized)
		b.buf = append(b.buf, '}')
	}
	// Timing keys last, and only here: everything above is deterministic.
	b.int("t_ns", tNs)
	b.int("dur_ns", durNs)
	return b.done()
}

// encodeCounter renders one counter metric event into b (reset first).
func encodeCounter(b *jsonlBuf, seq int, c CounterSnap) []byte {
	b.reset()
	b.str("ev", "metric")
	b.int("seq", int64(seq))
	b.str("metric", c.Name)
	b.str("type", "counter")
	b.int("value", c.Value)
	return b.done()
}

// encodeGauge renders one gauge metric event into b (reset first).
func encodeGauge(b *jsonlBuf, seq int, g GaugeSnap) []byte {
	b.reset()
	b.str("ev", "metric")
	b.int("seq", int64(seq))
	b.str("metric", g.Name)
	b.str("type", "gauge")
	b.float("value", g.Value)
	return b.done()
}

// encodeHist renders one histogram metric event into b (reset first).
func encodeHist(b *jsonlBuf, seq int, h HistSnap) []byte {
	b.reset()
	b.str("ev", "metric")
	b.int("seq", int64(seq))
	b.str("metric", h.Name)
	b.str("type", "hist")
	b.int("count", h.Count)
	b.float("sum", h.Sum)
	if h.Count > 0 {
		b.float("min", h.Min)
		b.float("max", h.Max)
	}
	b.floats("bounds", h.Bounds)
	b.ints("counts", h.Counts)
	return b.done()
}
