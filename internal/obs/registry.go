package obs

import (
	"math"
	"sort"
	"sync"
)

// Registry holds named typed metrics. Names are namespaced by
// convention ("cover.gain", "tsp.twoopt_moves"). Metrics are
// get-or-create; reads and writes are goroutine-safe; every method is
// a no-op on a nil registry so disabled tracing costs nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		//mdglint:allow-alloc(one allocation per distinct counter name, reused for every later update)
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		//mdglint:allow-alloc(one allocation per distinct gauge name, reused for every later update)
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given ascending bucket upper bounds (nil selects DefaultBuckets).
// Bounds passed on later lookups of an existing histogram are ignored.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		if len(bounds) == 0 {
			bounds = DefaultBuckets()
		}
		//mdglint:allow-alloc(one allocation per distinct histogram name, reused for every later observation)
		h = &Histogram{
			name: name,
			//mdglint:allow-alloc(defensive copy of caller bounds, once per histogram)
			bounds: append([]float64(nil), bounds...),
			//mdglint:allow-alloc(bucket array sized once per histogram)
			counts: make([]int64, len(bounds)+1), // +1 overflow bucket
			min:    math.Inf(1),
			max:    math.Inf(-1),
		}
		r.hists[name] = h
	}
	return h
}

// DefaultBuckets is the doubling ladder used when a histogram is
// created without explicit bounds. It suits the package's dimensionless
// counts (coverage gains, queue depths, improvement moves).
func DefaultBuckets() []float64 {
	//mdglint:allow-alloc(ladder is built once per histogram creation, not per observation)
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// LinearBuckets returns n bounds start, start+width, ... — the shape the
// energy histograms use (n must be >= 1, width > 0; a degenerate request
// yields a single bucket at start).
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		return []float64{start}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Counter is a monotonically adjusted integer metric.
type Counter struct {
	mu   sync.Mutex
	name string
	v    int64
}

// Add increments the counter by delta (no-op on nil).
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a last-value-wins float metric.
type Gauge struct {
	mu   sync.Mutex
	name string
	v    float64
}

// Set records the gauge value (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the last value set (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram buckets observations by ascending upper bounds: an
// observation lands in the first bucket whose bound is >= the value,
// or in the trailing overflow bucket. NaN observations are rejected
// (dropped) so a single undefined sample cannot poison count and sum.
type Histogram struct {
	mu       sync.Mutex
	name     string
	bounds   []float64
	counts   []int64 // len(bounds)+1; last is overflow
	count    int64
	sum      float64
	min, max float64
}

// Observe records one sample (no-op on nil; NaN is dropped).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	h.min = math.Min(h.min, v)
	h.max = math.Max(h.max, v)
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx]++
}

// Quantile estimates the p-quantile (0 <= p <= 1) of the observations
// from the bucket counts: linear interpolation inside the bucket that
// holds the target rank, with the observed min and max as the outer
// bucket edges, clamped to [Min, Max]. With no observations (or on a
// nil histogram) it returns NaN. The estimate is exact at p=0 and p=1
// and within one bucket width elsewhere — the usual histogram-quantile
// trade-off.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return bucketQuantile(h.bounds, h.counts, h.count, h.min, h.max, p)
}

// Quantile estimates the p-quantile from the snapshot's buckets, with
// the same contract as Histogram.Quantile.
func (s HistSnap) Quantile(p float64) float64 {
	return bucketQuantile(s.Bounds, s.Counts, s.Count, s.Min, s.Max, p)
}

// bucketQuantile interpolates the p-quantile from bucketed counts.
// counts is parallel to bounds plus a trailing overflow cell; min and
// max bound the outermost buckets.
func bucketQuantile(bounds []float64, counts []int64, count int64, min, max float64, p float64) float64 {
	if count == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return min
	}
	if p >= 1 {
		return max
	}
	rank := p * float64(count)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := float64(cum)
		cum += c
		if float64(cum) < rank {
			continue
		}
		lo := min
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := max
		if i < len(bounds) {
			hi = bounds[i]
		}
		v := lo + (rank-prev)/float64(c)*(hi-lo)
		return math.Max(min, math.Min(max, v))
	}
	return max // counts summed below count would be a corrupt histogram; max is the safe answer
}

// Count returns the number of accepted observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Snapshot is a deterministic point-in-time copy of a registry, every
// section sorted by metric name.
type Snapshot struct {
	Counters []CounterSnap
	Gauges   []GaugeSnap
	Hists    []HistSnap
}

// CounterSnap is one counter's snapshot row.
type CounterSnap struct {
	Name  string
	Value int64
}

// GaugeSnap is one gauge's snapshot row.
type GaugeSnap struct {
	Name  string
	Value float64
}

// HistSnap is one histogram's snapshot row. Bounds and Counts are
// parallel; Counts has one extra trailing overflow cell. Min and Max
// are meaningless (and +/-Inf) when Count is zero.
type HistSnap struct {
	Name     string
	Count    int64
	Sum      float64
	Min, Max float64
	Bounds   []float64
	Counts   []int64
}

// Len returns the total number of metrics in the snapshot.
func (s Snapshot) Len() int { return len(s.Counters) + len(s.Gauges) + len(s.Hists) }

// Snapshot copies the registry's current state, sorted by name so the
// emitted metric events (and any comparison over them) are independent
// of map iteration order. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	//mdglint:ignore determinism values are collected into a slice and sorted by name below; emission order is map-order independent
	for _, c := range r.counters {
		c.mu.Lock()
		snap.Counters = append(snap.Counters, CounterSnap{Name: c.name, Value: c.v})
		c.mu.Unlock()
	}
	//mdglint:ignore determinism values are collected into a slice and sorted by name below; emission order is map-order independent
	for _, g := range r.gauges {
		g.mu.Lock()
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: g.name, Value: g.v})
		g.mu.Unlock()
	}
	//mdglint:ignore determinism values are collected into a slice and sorted by name below; emission order is map-order independent
	for _, h := range r.hists {
		h.mu.Lock()
		snap.Hists = append(snap.Hists, HistSnap{
			Name:   h.name,
			Count:  h.count,
			Sum:    h.sum,
			Min:    h.min,
			Max:    h.max,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
		})
		h.mu.Unlock()
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Hists, func(i, j int) bool { return snap.Hists[i].Name < snap.Hists[j].Name })
	return snap
}
