package obs

import "testing"

// TestSpanHookObservesLifecycleEdges: every span start and end reaches
// the installed hook with the span's name and id, start edges arrive
// strictly before the matching end edges, and removing the hook (or
// calling on a nil trace) stops the calls.
func TestSpanHookObservesLifecycleEdges(t *testing.T) {
	tr := New(nil)
	type edge struct {
		name string
		id   int
		end  bool
	}
	var edges []edge
	tr.SetSpanHook(func(name string, id int, end bool) {
		edges = append(edges, edge{name, id, end})
	})
	root := tr.Start("plan")
	child := root.Child("cover")
	child.End()
	root.End()

	tr.SetSpanHook(nil)
	quiet := tr.Start("quiet")
	quiet.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	want := []edge{
		{"plan", 1, false},
		{"cover", 2, false},
		{"cover", 2, true},
		{"plan", 1, true},
	}
	if len(edges) != len(want) {
		t.Fatalf("hook saw %d edges, want %d: %+v", len(edges), len(want), edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, edges[i], want[i])
		}
	}

	// Nil traces accept (and ignore) hooks, like every other obs call.
	var nilTrace *Trace
	nilTrace.SetSpanHook(func(string, int, bool) { t.Error("hook on a nil trace fired") })
	nilTrace.Start("ghost").End()
}
