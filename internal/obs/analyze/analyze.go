// Package analyze reads JSONL traces written by internal/obs back into
// structured form: the span tree, per-phase aggregates, the critical
// path, folded stacks for flamegraphs, and a canonical A/B diff. It is
// the offline half of the observability stack — obs records, analyze
// answers questions — and it shares the determinism contract: every
// derived view except the explicitly timing-bearing ones depends only
// on the semantic event content, so two traces of the same seeded run
// analyze identically.
package analyze

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Span is one parsed span event linked into the reconstructed tree.
// IDs and parents come from the trace; Children is rebuilt by Parse and
// sorted by id, which is Start order.
type Span struct {
	Seq      int
	ID       int
	Parent   int // 0 for a root span
	Name     string
	TNs      int64 // start offset from trace start (wall clock)
	DurNs    int64 // duration (wall clock)
	Fields   []Field
	Children []*Span
}

// Field is one span field, with the value kept as raw JSON text so no
// reformatting can perturb it. Parse sorts fields by key.
type Field struct {
	Key   string
	Value string
}

// Metric is one metric event from the trace tail.
type Metric struct {
	Seq   int
	Name  string
	Type  string // "counter", "gauge", or "hist"
	Value string // raw JSON value for counters and gauges; "" for hists
	Count int64  // hist only
	Sum   float64
}

// Trace is a fully parsed trace file.
type Trace struct {
	Spans   []*Span // every span, in event (end) order
	Roots   []*Span // tree roots, sorted by id
	Metrics []Metric
}

// event mirrors the union of the obs wire shapes (jsonl.go).
type event struct {
	Ev     string                     `json:"ev"`
	Seq    int                        `json:"seq"`
	Span   string                     `json:"span"`
	ID     int                        `json:"id"`
	Parent int                        `json:"parent"`
	Fields map[string]json.RawMessage `json:"fields"`
	TNs    int64                      `json:"t_ns"`
	DurNs  int64                      `json:"dur_ns"`
	Metric string                     `json:"metric"`
	Type   string                     `json:"type"`
	Value  json.RawMessage            `json:"value"`
	Count  int64                      `json:"count"`
	Sum    float64                    `json:"sum"`
}

// Parse reads one JSONL trace and reconstructs the span tree. Spans
// whose parent never appears (a truncated trace, or a parent that was
// still open when the stream stopped) become roots, so a partial trace
// still analyzes. Duplicate span ids are a corrupt trace and an error.
func Parse(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("analyze: line %d: %w", lineNo, err)
		}
		switch ev.Ev {
		case "span":
			s := &Span{
				Seq:    ev.Seq,
				ID:     ev.ID,
				Parent: ev.Parent,
				Name:   ev.Span,
				TNs:    ev.TNs,
				DurNs:  ev.DurNs,
			}
			for k, v := range ev.Fields {
				s.Fields = append(s.Fields, Field{Key: k, Value: string(v)})
			}
			sort.Slice(s.Fields, func(i, j int) bool { return s.Fields[i].Key < s.Fields[j].Key })
			tr.Spans = append(tr.Spans, s)
		case "metric":
			tr.Metrics = append(tr.Metrics, Metric{
				Seq:   ev.Seq,
				Name:  ev.Metric,
				Type:  ev.Type,
				Value: string(ev.Value),
				Count: ev.Count,
				Sum:   ev.Sum,
			})
		default:
			return nil, fmt.Errorf("analyze: line %d: unknown event type %q", lineNo, ev.Ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analyze: reading trace: %w", err)
	}

	byID := make(map[int]*Span, len(tr.Spans))
	for _, s := range tr.Spans {
		if byID[s.ID] != nil {
			return nil, fmt.Errorf("analyze: duplicate span id %d (%q and %q)", s.ID, byID[s.ID].Name, s.Name)
		}
		byID[s.ID] = s
	}
	for _, s := range tr.Spans {
		if p := byID[s.Parent]; s.Parent != 0 && p != nil {
			p.Children = append(p.Children, s)
		} else {
			tr.Roots = append(tr.Roots, s)
		}
	}
	for _, s := range tr.Spans {
		sort.Slice(s.Children, func(i, j int) bool { return s.Children[i].ID < s.Children[j].ID })
	}
	sort.Slice(tr.Roots, func(i, j int) bool { return tr.Roots[i].ID < tr.Roots[j].ID })
	return tr, nil
}

// SelfNs is the span's duration minus the time spent in its recorded
// children, floored at zero (concurrent children or clock granularity
// can make the raw difference slightly negative).
func (s *Span) SelfNs() int64 {
	self := s.DurNs
	for _, c := range s.Children {
		self -= c.DurNs
	}
	if self < 0 {
		return 0
	}
	return self
}

// PhaseStat aggregates every span sharing one name: how often the phase
// ran, its cumulative wall time, and its self time (cumulative minus
// time attributed to child phases).
type PhaseStat struct {
	Name    string
	Count   int
	TotalNs int64
	SelfNs  int64
}

// PhaseStats returns per-phase aggregates sorted by name. Count is
// timing-free and therefore deterministic; TotalNs and SelfNs carry
// wall-clock readings.
func (t *Trace) PhaseStats() []PhaseStat {
	agg := map[string]*PhaseStat{}
	for _, s := range t.Spans {
		st := agg[s.Name]
		if st == nil {
			st = &PhaseStat{Name: s.Name}
			agg[s.Name] = st
		}
		st.Count++
		st.TotalNs += s.DurNs
		st.SelfNs += s.SelfNs()
	}
	out := make([]PhaseStat, 0, len(agg))
	//mdglint:ignore determinism rows are collected and then sorted by name; output order is map-order independent
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CriticalPath walks from the longest root span down through the
// longest child at each level and returns the chain. Duration ties
// break toward the lower span id so the path is reproducible even on a
// degenerate (all-zero-duration) trace. An empty trace yields nil.
func (t *Trace) CriticalPath() []*Span {
	cur := longest(t.Roots)
	var path []*Span
	for cur != nil {
		path = append(path, cur)
		cur = longest(cur.Children)
	}
	return path
}

// longest picks the span with the greatest duration; spans arrive
// sorted by id, so strict > keeps the lowest id on ties.
func longest(spans []*Span) *Span {
	var best *Span
	for _, s := range spans {
		if best == nil || s.DurNs > best.DurNs {
			best = s
		}
	}
	return best
}
