package analyze

import (
	"bytes"
	"strings"
	"testing"

	"mobicol/internal/obs"
)

// sample is a hand-written trace with known timing: root (id 1,
// 100ns) has children child (id 2, 30ns, one field) and leaf (id 3,
// 10ns); child has grandchild gc (id 4, 5ns). Children end before
// parents, so the file is in end order while ids are in start order.
const sample = `{"ev":"span","seq":1,"span":"gc","id":4,"parent":2,"t_ns":5,"dur_ns":5}
{"ev":"span","seq":2,"span":"child","id":2,"parent":1,"fields":{"n":12,"algo":"shdg"},"t_ns":0,"dur_ns":30}
{"ev":"span","seq":3,"span":"leaf","id":3,"parent":1,"t_ns":40,"dur_ns":10}
{"ev":"span","seq":4,"span":"root","id":1,"t_ns":0,"dur_ns":100}
{"ev":"metric","seq":5,"metric":"cover.calls","type":"counter","value":7}
{"ev":"metric","seq":6,"metric":"cover.gain","type":"hist","count":3,"sum":9.5,"min":1,"max":5,"bounds":[1,2],"counts":[1,1,1]}
`

func parseSample(t *testing.T) *Trace {
	t.Helper()
	tr, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestParseTree(t *testing.T) {
	tr := parseSample(t)
	if len(tr.Spans) != 4 || len(tr.Roots) != 1 {
		t.Fatalf("got %d spans, %d roots, want 4 and 1", len(tr.Spans), len(tr.Roots))
	}
	root := tr.Roots[0]
	if root.Name != "root" || len(root.Children) != 2 {
		t.Fatalf("root = %q with %d children", root.Name, len(root.Children))
	}
	if root.Children[0].Name != "child" || root.Children[1].Name != "leaf" {
		t.Fatalf("children out of id order: %q, %q", root.Children[0].Name, root.Children[1].Name)
	}
	child := root.Children[0]
	if len(child.Children) != 1 || child.Children[0].Name != "gc" {
		t.Fatalf("child's subtree wrong: %+v", child.Children)
	}
	// Fields must come back sorted by key with raw JSON values.
	if len(child.Fields) != 2 || child.Fields[0].Key != "algo" || child.Fields[0].Value != `"shdg"` ||
		child.Fields[1].Key != "n" || child.Fields[1].Value != "12" {
		t.Fatalf("child fields = %+v", child.Fields)
	}
	if len(tr.Metrics) != 2 || tr.Metrics[0].Name != "cover.calls" || tr.Metrics[0].Value != "7" {
		t.Fatalf("metrics = %+v", tr.Metrics)
	}
	if h := tr.Metrics[1]; h.Type != "hist" || h.Count != 3 || h.Sum != 9.5 {
		t.Fatalf("hist metric = %+v", h)
	}
}

func TestParseOrphanBecomesRoot(t *testing.T) {
	trace := `{"ev":"span","seq":1,"span":"stray","id":9,"parent":42,"t_ns":0,"dur_ns":1}`
	tr, err := Parse(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "stray" {
		t.Fatalf("orphan not promoted to root: %+v", tr.Roots)
	}
}

func TestParseRejectsCorruptTraces(t *testing.T) {
	cases := map[string]string{
		"duplicate id": `{"ev":"span","seq":1,"span":"a","id":1,"t_ns":0,"dur_ns":1}
{"ev":"span","seq":2,"span":"b","id":1,"t_ns":0,"dur_ns":1}`,
		"unknown event": `{"ev":"bogus","seq":1}`,
		"not json":      `{{{`,
	}
	for name, trace := range cases {
		if _, err := Parse(strings.NewReader(trace)); err == nil {
			t.Errorf("%s: Parse accepted a corrupt trace", name)
		}
	}
}

func TestSelfTimeAndPhaseStats(t *testing.T) {
	tr := parseSample(t)
	root := tr.Roots[0]
	if self := root.SelfNs(); self != 60 { // 100 - 30 - 10
		t.Errorf("root self = %d, want 60", self)
	}
	if self := root.Children[0].SelfNs(); self != 25 { // 30 - 5
		t.Errorf("child self = %d, want 25", self)
	}

	stats := tr.PhaseStats()
	want := []PhaseStat{
		{Name: "child", Count: 1, TotalNs: 30, SelfNs: 25},
		{Name: "gc", Count: 1, TotalNs: 5, SelfNs: 5},
		{Name: "leaf", Count: 1, TotalNs: 10, SelfNs: 10},
		{Name: "root", Count: 1, TotalNs: 100, SelfNs: 60},
	}
	if len(stats) != len(want) {
		t.Fatalf("got %d phases, want %d: %+v", len(stats), len(want), stats)
	}
	for i, w := range want {
		if stats[i] != w {
			t.Errorf("phase[%d] = %+v, want %+v", i, stats[i], w)
		}
	}
}

func TestSelfTimeFloorsAtZero(t *testing.T) {
	// Child longer than parent (possible with clock granularity): self
	// must clamp to 0, not go negative.
	trace := `{"ev":"span","seq":1,"span":"kid","id":2,"parent":1,"t_ns":0,"dur_ns":50}
{"ev":"span","seq":2,"span":"top","id":1,"t_ns":0,"dur_ns":40}`
	tr, err := Parse(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if self := tr.Roots[0].SelfNs(); self != 0 {
		t.Errorf("over-subscribed parent self = %d, want 0", self)
	}
}

func TestCriticalPath(t *testing.T) {
	tr := parseSample(t)
	path := tr.CriticalPath()
	var names []string
	for _, s := range path {
		names = append(names, s.Name)
	}
	if got := strings.Join(names, ";"); got != "root;child;gc" {
		t.Errorf("critical path = %s, want root;child;gc", got)
	}
	if empty := (&Trace{}).CriticalPath(); empty != nil {
		t.Errorf("empty trace critical path = %+v, want nil", empty)
	}
}

func TestCriticalPathTieBreaksTowardLowerID(t *testing.T) {
	trace := `{"ev":"span","seq":1,"span":"a","id":2,"parent":1,"t_ns":0,"dur_ns":10}
{"ev":"span","seq":2,"span":"b","id":3,"parent":1,"t_ns":10,"dur_ns":10}
{"ev":"span","seq":3,"span":"top","id":1,"t_ns":0,"dur_ns":20}`
	tr, err := Parse(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	path := tr.CriticalPath()
	if len(path) != 2 || path[1].Name != "a" {
		t.Fatalf("tie should pick lower id: %+v", path)
	}
}

func TestWriteFolded(t *testing.T) {
	tr := parseSample(t)
	var buf bytes.Buffer
	if err := WriteFolded(&buf, tr); err != nil {
		t.Fatal(err)
	}
	want := "root 60\nroot;child 25\nroot;child;gc 5\nroot;leaf 10\n"
	if buf.String() != want {
		t.Errorf("folded output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestWriteFoldedMergesRepeatedStacks(t *testing.T) {
	trace := `{"ev":"span","seq":1,"span":"p","id":2,"parent":1,"t_ns":0,"dur_ns":3}
{"ev":"span","seq":2,"span":"p","id":3,"parent":1,"t_ns":3,"dur_ns":4}
{"ev":"span","seq":3,"span":"top","id":1,"t_ns":0,"dur_ns":7}`
	tr, err := Parse(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFolded(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "top;p 7\n" {
		t.Errorf("repeated stacks not merged: %q", got)
	}
}

// realTrace records an actual obs trace so the parser is exercised
// against the real encoder, not just hand-written JSON.
func realTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.New(&buf)
	root := tr.Start("plan")
	c := root.Child("cover")
	c.SetInt("chosen", 12)
	c.Count("cover.calls", 3)
	c.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParseRealEncoderOutput(t *testing.T) {
	tr, err := Parse(bytes.NewReader(realTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "plan" || len(tr.Roots[0].Children) != 1 {
		t.Fatalf("real trace tree wrong: %+v", tr.Roots)
	}
	if len(tr.Metrics) != 1 || tr.Metrics[0].Name != "cover.calls" {
		t.Fatalf("real trace metrics wrong: %+v", tr.Metrics)
	}
}

func TestDiffEqualModuloTiming(t *testing.T) {
	// Same semantic content, different timing values: must compare equal.
	a := strings.ReplaceAll(sample, `"dur_ns":100`, `"dur_ns":999`)
	res, err := Diff(strings.NewReader(sample), strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal {
		t.Errorf("timing-only difference reported as divergence: %+v", res)
	}
	if res.ALines != 6 || res.BLines != 6 {
		t.Errorf("line counts = %d/%d, want 6/6", res.ALines, res.BLines)
	}
}

func TestDiffFindsSemanticDivergence(t *testing.T) {
	b := strings.Replace(sample, `"n":12`, `"n":13`, 1)
	res, err := Diff(strings.NewReader(sample), strings.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if res.Equal || res.Line != 2 {
		t.Fatalf("divergence not located: %+v", res)
	}
	if !strings.Contains(res.A, `"n":12`) || !strings.Contains(res.B, `"n":13`) {
		t.Errorf("diverging lines not reported: a=%q b=%q", res.A, res.B)
	}
}

func TestDiffLengthMismatch(t *testing.T) {
	short := strings.Join(strings.Split(sample, "\n")[:3], "\n")
	res, err := Diff(strings.NewReader(sample), strings.NewReader(short))
	if err != nil {
		t.Fatal(err)
	}
	if res.Equal || res.Line != 4 || res.B != "" || res.A == "" {
		t.Fatalf("truncated side not reported: %+v", res)
	}
}
