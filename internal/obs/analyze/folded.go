package analyze

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteFolded exports the trace in folded-stack format — one
// "root;child;leaf weight" line per distinct stack, weight in
// nanoseconds of self time — which is what flamegraph.pl and every
// speedscope-style viewer consume. Identical stacks (a phase re-entered
// under the same ancestry) are merged, zero-weight stacks are dropped,
// and lines are sorted, so the output is a canonical function of the
// trace.
func WriteFolded(w io.Writer, t *Trace) error {
	weights := map[string]int64{}
	var stack []string
	var walk func(s *Span)
	walk = func(s *Span) {
		stack = append(stack, s.Name)
		if self := s.SelfNs(); self > 0 {
			weights[strings.Join(stack, ";")] += self
		}
		for _, c := range s.Children {
			walk(c)
		}
		stack = stack[:len(stack)-1]
	}
	for _, r := range t.Roots {
		walk(r)
	}

	keys := make([]string, 0, len(weights))
	//mdglint:ignore determinism stacks are collected and then sorted; output order is map-order independent
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, weights[k]); err != nil {
			return err
		}
	}
	return nil
}
