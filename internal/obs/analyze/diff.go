package analyze

import (
	"bufio"
	"fmt"
	"io"

	"mobicol/internal/obs"
)

// DiffResult reports how two canonicalised traces compare. When Equal
// is false, Line is the 1-based index of the first diverging canonical
// line and A/B hold that line from each side ("" when one trace simply
// ended first).
type DiffResult struct {
	Equal  bool
	Line   int
	A, B   string
	ALines int // canonical line counts per side
	BLines int
}

// Diff compares two traces after canonicalisation (obs.CanonicalLine:
// wall-clock keys stripped, remaining keys sorted), so two recordings
// of the same seeded run compare equal and any semantic divergence —
// different span structure, ids, fields, or metric values — is caught
// at its first line.
func Diff(a, b io.Reader) (DiffResult, error) {
	al, err := canonicalLines(a)
	if err != nil {
		return DiffResult{}, fmt.Errorf("analyze: diff side A: %w", err)
	}
	bl, err := canonicalLines(b)
	if err != nil {
		return DiffResult{}, fmt.Errorf("analyze: diff side B: %w", err)
	}
	res := DiffResult{ALines: len(al), BLines: len(bl)}
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			res.Line = i + 1
			res.A, res.B = al[i], bl[i]
			return res, nil
		}
	}
	if len(al) != len(bl) {
		res.Line = n + 1
		if len(al) > n {
			res.A = al[n]
		}
		if len(bl) > n {
			res.B = bl[n]
		}
		return res, nil
	}
	res.Equal = true
	return res, nil
}

// canonicalLines reads a trace and returns its canonical lines in order.
func canonicalLines(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		c, err := obs.CanonicalLine(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if c != nil {
			out = append(out, string(c))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
