// Package report renders an obs.Trace as a human-readable summary: one
// table of span timings and one of metrics. The CLIs print it to stderr
// under -metrics so it composes with stdout pipelines.
package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"mobicol/internal/obs"
)

// Write renders the trace's span summary and metric snapshot to w.
// A nil trace writes nothing.
func Write(w io.Writer, tr *obs.Trace) error {
	if tr == nil {
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	spans := tr.Summary()
	if len(spans) > 0 {
		fmt.Fprintln(tw, "span\tcount\ttotal(ms)\tmean(ms)")
		for _, s := range spans {
			total := float64(s.TotalNs) / 1e6
			fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\n", s.Name, s.Count, total, total/float64(s.Count))
		}
	}
	snap := tr.Registry().Snapshot()
	if snap.Len() > 0 {
		if len(spans) > 0 {
			fmt.Fprintln(tw, "\t\t\t")
		}
		fmt.Fprintln(tw, "metric\ttype\tvalue\tdetail")
		for _, c := range snap.Counters {
			fmt.Fprintf(tw, "%s\tcounter\t%d\t\n", c.Name, c.Value)
		}
		for _, g := range snap.Gauges {
			fmt.Fprintf(tw, "%s\tgauge\t%g\t\n", g.Name, g.Value)
		}
		for _, h := range snap.Hists {
			detail := ""
			if h.Count > 0 {
				detail = fmt.Sprintf("mean %.3g min %.3g max %.3g p50 %.3g p90 %.3g p99 %.3g",
					h.Sum/float64(h.Count), h.Min, h.Max,
					h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
			}
			fmt.Fprintf(tw, "%s\thist\tn=%d\t%s\n", h.Name, h.Count, detail)
		}
	}
	return tw.Flush()
}
