package report

import (
	"strings"
	"testing"

	"mobicol/internal/obs"
)

func TestWriteRendersSpansAndMetrics(t *testing.T) {
	tr := obs.New(nil)
	sp := tr.Start("cover")
	sp.Count("cover.iters", 7)
	sp.Gauge("planner.stops", 12)
	sp.Observe("cover.gain", 4)
	sp.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, tr); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"span", "cover", "metric", "cover.iters", "planner.stops", "cover.gain", "counter", "gauge", "hist"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteNilTrace(t *testing.T) {
	var b strings.Builder
	if err := Write(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil trace wrote %q", b.String())
	}
}
