package obs

import (
	"fmt"
	"os"
)

// CLITrace materialises the -trace/-metrics flag pair the measurement
// CLIs share: a JSONL file trace when path is non-empty, an
// aggregate-only trace when only metrics is requested, and a nil trace
// (all instrumentation disabled) when neither. The returned finish func
// closes the trace and the file; call it exactly once before rendering
// any -metrics report.
func CLITrace(path string, metrics bool) (*Trace, func() error, error) {
	if path == "" && !metrics {
		return nil, func() error { return nil }, nil
	}
	if path == "" {
		tr := New(nil)
		return tr, tr.Close, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: trace file: %w", err)
	}
	tr := New(f)
	finish := func() error {
		closeErr := tr.Close()
		// Close errors on the trace file are real data loss: report them.
		if err := f.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
		return closeErr
	}
	return tr, finish, nil
}
