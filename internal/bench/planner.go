package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"

	"mobicol/internal/engine"
	"mobicol/internal/geom"
	"mobicol/internal/obs"
	"mobicol/internal/par"
)

// PlannerAlgoBench is one algorithm's row in BENCH_planner.json.
type PlannerAlgoBench struct {
	Algo      string  `json:"algo"`
	MeanTourM float64 `json:"mean_tour_m"`
	MeanStops float64 `json:"mean_stops"`
	// PhaseNs is the total wall time per span name across all trials,
	// straight from the obs span summary ("plan" is the whole planner;
	// "candidates"/"cover"/"refine"/"tsp" are its phases). Wall times
	// are machine-dependent by nature; the deterministic columns are
	// the tour lengths and stop counts.
	PhaseNs map[string]int64 `json:"phase_ns"`
	// Spans is the number of spans recorded per name (trial count for
	// top-level phases; higher for per-pass spans like "twoopt").
	Spans map[string]int `json:"spans"`
	// AllocsPerOp and BytesPerOp are the mean heap allocation count and
	// bytes per full planning run (deployment included), measured
	// sequentially from runtime.MemStats deltas after one warmup run.
	// Machine-dependent like PhaseNs; the enforced allocation gates are
	// the escape baseline (cmd/mdgescape) and the zero-alloc
	// steady-state benchmarks, not these fields.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

// PlannerBenchMeta is the run-metadata block added in schema v2: how
// the harness was fanned out when the numbers were taken. Workers is
// the effective pool size (resolved from Config.Workers, so a <= 0
// config records the actual CPU-count fan-out); TrialsPerPhase is the
// number of trials folded into each phase_ns/spans row. Neither affects
// the quality fields — mean_tour_m and mean_stops are identical for
// every pool size — but phase times are only comparable between runs
// with the same metadata.
type PlannerBenchMeta struct {
	Workers        int `json:"workers"`
	TrialsPerPhase int `json:"trials_per_phase"`
}

// PlannerBenchResult is the schema of BENCH_planner.json: per-algorithm
// tour quality plus per-phase planning cost on a fixed instance family.
// Schema history: v1 had no meta block; v2 added it (PlannerBenchMeta);
// v3 added the optional large-n scale rows with warm-start columns.
type PlannerBenchResult struct {
	Schema string             `json:"schema"`
	Trials int                `json:"trials"`
	Seed   uint64             `json:"seed"`
	N      int                `json:"n"`
	SideM  float64            `json:"side_m"`
	RangeM float64            `json:"range_m"`
	Meta   PlannerBenchMeta   `json:"meta"`
	Algos  []PlannerAlgoBench `json:"algos"`
	// Scale holds the large-n single-trial rows (n=10k/100k by default),
	// present when the run was invoked with scale sizes. The perf ratchet
	// compares only their deterministic quality columns.
	Scale []ScaleBench `json:"scale,omitempty"`
}

// PlannerBenchSchema is the current BENCH_planner.json schema tag.
const PlannerBenchSchema = "mobicol/bench-planner/v3"

// PlannerBenchmarks measures the planners cfg.Trials times on the
// standard deployment family (cfg.BenchN sensors, default 100, with the
// field side scaled to hold density at the paper's evaluation setting)
// and returns per-algo tour quality plus per-phase span durations
// collected through internal/obs.
func PlannerBenchmarks(cfg Config) (*PlannerBenchResult, error) {
	n := cfg.benchN()
	side := 200.0 * math.Sqrt(float64(n)/100.0)
	const rng = 30.0
	res := &PlannerBenchResult{
		Schema: PlannerBenchSchema,
		Trials: cfg.trials(),
		Seed:   cfg.Seed,
		N:      n,
		SideM:  side,
		RangeM: rng,
		Meta: PlannerBenchMeta{
			Workers:        cfg.pool().Size(),
			TrialsPerPhase: cfg.trials(),
		},
	}
	type algoRun struct {
		name string
		plan func(tr *obs.Trace, seed uint64) (tourM geom.Meters, stops int, err error)
	}
	// Each row is a registered engine planner; -algo swaps the set
	// without touching the harness. Deployment happens outside the
	// planner's spans (phase_ns bills planning, not generation), and the
	// zero engine pool keeps each trial sequential — the fan-out lives at
	// the trial level below.
	var algos []algoRun
	for _, name := range cfg.algos() {
		p, err := engine.Select(name)
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		algos = append(algos, algoRun{name, func(tr *obs.Trace, seed uint64) (geom.Meters, int, error) {
			nw := deploy(n, side, rng, seed)
			pl, st, err := p.Plan(context.Background(), engine.Scenario{Net: nw}, engine.Options{Obs: tr})
			if err != nil {
				return 0, 0, err
			}
			if err := cfg.checkEnginePlan(p.Name(), nw, pl); err != nil {
				return 0, 0, err
			}
			return st.Length, st.Stops, nil
		}})
	}
	type trialOut struct {
		tourM geom.Meters
		stops int
		err   error
	}
	for _, a := range algos {
		tr := obs.New(nil) // aggregate-only: we want the span summary
		// Trials fan out across the pool: seeds are fixed per trial index,
		// the shared aggregate-only trace is goroutine-safe and its summary
		// is order-insensitive, and the sums fold in index order — so the
		// quality fields are identical for every pool size.
		outs := par.Map(cfg.pool(), cfg.trials(), func(i int) trialOut {
			tourM, stops, err := a.plan(tr, cfg.Seed+uint64(i))
			return trialOut{tourM: tourM, stops: stops, err: err}
		})
		sumTour, sumStops := geom.Meters(0), 0
		for _, o := range outs {
			if o.err != nil {
				return nil, fmt.Errorf("bench: planner %s: %w", a.name, o.err)
			}
			sumTour += o.tourM
			sumStops += o.stops
		}
		if err := tr.Close(); err != nil {
			return nil, err
		}
		row := PlannerAlgoBench{
			Algo: a.name,
			//mdglint:ignore unitcheck JSON boundary: BENCH_planner.json stores tour lengths as raw float64
			MeanTourM: float64(sumTour) / float64(cfg.trials()),
			MeanStops: float64(sumStops) / float64(cfg.trials()),
			PhaseNs:   make(map[string]int64),
			Spans:     make(map[string]int),
		}
		for _, st := range tr.Summary() {
			row.PhaseNs[st.Name] = st.TotalNs
			row.Spans[st.Name] = st.Count
		}
		allocs, bytesPer, err := measureAllocs(a.plan, cfg.Seed, cfg.trials())
		if err != nil {
			return nil, fmt.Errorf("bench: planner %s allocs: %w", a.name, err)
		}
		row.AllocsPerOp, row.BytesPerOp = allocs, bytesPer
		res.Algos = append(res.Algos, row)
	}
	if len(cfg.ScaleSizes) > 0 {
		scale, err := ScaleBenchmarks(cfg, cfg.ScaleSizes, cfg.WarmStart)
		if err != nil {
			return nil, err
		}
		res.Scale = scale
	}
	return res, nil
}

// measureAllocs reports the mean heap allocation count and bytes per
// planning run, measured sequentially over ops runs after one warmup
// (so lazy package state and scratch growth do not bill the steady
// state). The quality fields never come from this pass — it exists only
// to populate the allocs_per_op/bytes_per_op columns.
func measureAllocs(plan func(tr *obs.Trace, seed uint64) (geom.Meters, int, error), seed uint64, ops int) (allocsPerOp, bytesPerOp uint64, err error) {
	tr := obs.New(nil)
	if _, _, err = plan(tr, seed); err != nil {
		return 0, 0, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < ops; i++ {
		if _, _, err = plan(tr, seed+uint64(i)); err != nil {
			return 0, 0, err
		}
	}
	runtime.ReadMemStats(&m1)
	if err = tr.Close(); err != nil {
		return 0, 0, err
	}
	n := uint64(ops)
	return (m1.Mallocs - m0.Mallocs) / n, (m1.TotalAlloc - m0.TotalAlloc) / n, nil
}

// WritePlannerBench runs PlannerBenchmarks and writes the result as
// indented JSON (the BENCH_planner.json artifact).
func WritePlannerBench(w io.Writer, cfg Config) error {
	res, err := PlannerBenchmarks(cfg)
	if err != nil {
		return err
	}
	return WriteBenchResult(w, res)
}

// WriteBenchResult encodes one planner benchmark result in the artifact
// format (indented JSON, trailing newline).
func WriteBenchResult(w io.Writer, res *PlannerBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
