package bench

import (
	"fmt"

	"mobicol/internal/geom"
	"mobicol/internal/rng"
	"mobicol/internal/shdgp"
	"mobicol/internal/stats"
)

// E14Hetero measures heterogeneous transmission ranges: as a growing
// fraction of sensors runs weak radios (half the nominal range), stops
// must crowd closer to the weak sensors and the tour stretches. The
// uniform-range rows bracket the sweep.
func E14Hetero(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E14",
		Title:  "heterogeneous ranges: tour vs weak-sensor fraction (N=150, L=200m, strong 30m, weak 15m)",
		Header: []string{"weak fraction", "tour(m)", "stops", "vs all-strong"},
		Notes:  []string{fmt.Sprintf("%d trials per row; weak sensors fixed per seed", cfg.trials())},
	}
	fractions := []float64{0, 0.25, 0.5, 0.75, 1}
	if cfg.Quick {
		fractions = []float64{0, 0.5, 1}
	}
	n := 150
	if cfg.Quick {
		n = 80
	}
	baseline := geom.Meters(0)
	for fi, frac := range fractions {
		var lens []geom.Meters
		var stops []float64
		for trial := 0; trial < cfg.trials(); trial++ {
			seed := cfg.Seed + uint64(trial)*71059
			nw := deploy(n, 200, 30, seed)
			src := rng.New(seed ^ 0xdead)
			radii := make([]float64, nw.N())
			for i := range radii {
				if src.Float64() < frac {
					radii[i] = 15
				} else {
					radii[i] = 30
				}
			}
			sol, err := shdgp.PlanHetero(nw, radii, tspOpts())
			if err != nil {
				return nil, fmt.Errorf("E14 frac=%v trial %d: %w", frac, trial, err)
			}
			if err := sol.ValidateHetero(nw.Positions(), radii); err != nil {
				return nil, err
			}
			lens = append(lens, sol.Length)
			stops = append(stops, float64(sol.Stops()))
		}
		mean := stats.Mean(lens)
		if fi == 0 {
			baseline = mean
		}
		t.AddRow(fmt.Sprintf("%.2f", frac), f1(mean), f2(stats.Mean(stops)),
			fmt.Sprintf("%+.1f%%", 100*(mean-baseline)/baseline))
	}
	return t, nil
}
