// Package bench regenerates the paper's evaluation: every experiment
// E1–E8 documented in DESIGN.md and EXPERIMENTS.md is a function that
// sweeps the relevant parameter, runs repeated seeded trials, and returns
// a Table whose rows mirror the corresponding figure's series. cmd/mdgbench
// prints the tables; root-level testing.B benchmarks wrap the same
// functions so `go test -bench` regenerates everything.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table in RFC-4180 CSV form (header row first) for
// external plotting tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown writes the table as a GitHub-flavoured markdown section:
// a heading, the table, and the notes as a footnote list. cmd/mdgreport
// stitches these into a full reproduction report.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// f1 formats a float (of any float64-underlying dimension) with one
// decimal.
func f1[F ~float64](v F) string { return fmt.Sprintf("%.1f", float64(v)) }

// f2 formats a float with two decimals.
func f2[F ~float64](v F) string { return fmt.Sprintf("%.2f", float64(v)) }

// d formats an int (of any int-underlying dimension, e.g. sim.Rounds).
func d[I ~int](v I) string { return fmt.Sprintf("%d", int(v)) }

// ratio formats a/b as "x.xx×". Both operands must carry the same
// dimension, which is exactly what makes the quotient dimensionless.
func ratio[F ~float64](a, b F) string {
	//mdglint:ignore floateq zero-guard before division; any non-zero denominator is formattable
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}
