package bench

import (
	"fmt"

	"mobicol/internal/collector"
	"mobicol/internal/geom"
	"mobicol/internal/routing"
	"mobicol/internal/shdgp"
	"mobicol/internal/sim"
	"mobicol/internal/stats"
)

// E9BufferCapacity quantifies the buffer constraint the paper raises when
// motivating planned stops: bounding the sensors per polling point (the
// stop's packet buffer) forces more stops and a longer tour. Cap = ∞ is
// the unconstrained planner; cap = 1 degenerates to visiting (a stop for)
// every sensor.
func E9BufferCapacity(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "buffer-capacity extension: tour vs max sensors per stop (N=150, L=200m, R=30m)",
		Header: []string{"capacity", "tour(m)", "stops", "peak buffer", "vs uncapacitated"},
		Notes: []string{
			"peak buffer = largest packet count held at any stop when the collector arrives (DES-measured)",
			fmt.Sprintf("%d trials per row", cfg.trials()),
		},
	}
	n := 150
	if cfg.Quick {
		n = 80
	}
	caps := []int{0, 20, 10, 5, 2, 1} // 0 = unconstrained
	if cfg.Quick {
		caps = []int{0, 5, 1}
	}
	spec := collector.DefaultSpec()
	baseline := geom.Meters(0)
	for ci, cap := range caps {
		var lens []geom.Meters
		var stops, peaks []float64
		for trial := 0; trial < cfg.trials(); trial++ {
			seed := cfg.Seed + uint64(trial)*15013
			nw := deploy(n, 200, 30, seed)
			p := shdgp.NewProblem(nw)
			var sol *shdgp.Solution
			var err error
			if cap == 0 {
				sol, err = shdgp.Plan(p, shdgp.DefaultPlannerOptions())
			} else {
				sol, err = shdgp.PlanCapacitated(p, cap, tspOpts())
			}
			if err != nil {
				return nil, fmt.Errorf("E9 cap=%d trial %d: %w", cap, trial, err)
			}
			if cap > 0 {
				if err := sol.ValidateCapacity(cap); err != nil {
					return nil, err
				}
			}
			rt, err := sim.DESMobileRound(nw, sol.Plan, spec)
			if err != nil {
				return nil, err
			}
			lens = append(lens, sol.Length)
			stops = append(stops, float64(sol.Stops()))
			peaks = append(peaks, float64(rt.MaxQueue()))
		}
		mean := stats.Mean(lens)
		if ci == 0 {
			baseline = mean
		}
		label := "unbounded"
		if cap > 0 {
			label = d(cap)
		}
		t.AddRow(label, f1(mean), f2(stats.Mean(stops)), f2(stats.Mean(peaks)),
			fmt.Sprintf("%+.1f%%", 100*(mean-baseline)/baseline))
	}
	return t, nil
}

// E10DESLatency compares the closed-form latency model against the
// packet-granularity discrete-event simulation. For the static sink the
// closed form (max hops × per-hop delay) ignores queueing at the
// sink-adjacent relays, which serialise the whole field's traffic; the DES
// measures the real drain time. For the mobile scheme both agree — the
// collector's motion dominates and nothing queues behind radio contention.
func E10DESLatency(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "closed-form vs discrete-event latency (L=200m, R=30m, 5ms/hop)",
		Header: []string{"N", "static analytic(s)", "static DES(s)", "DES/analytic", "static peak queue", "mobile analytic(s)", "mobile DES(s)"},
		Notes:  []string{fmt.Sprintf("%d trials per point", cfg.trials())},
	}
	ns := []int{100, 200, 300, 400}
	if cfg.Quick {
		ns = []int{100, 200}
	}
	spec := collector.DefaultSpec()
	const relayDelay = 0.005
	for _, n := range ns {
		var sAna, sDes, sPeak, mAna, mDes []float64
		for trial := 0; trial < cfg.trials(); trial++ {
			seed := cfg.Seed + uint64(trial)*23017 + uint64(n)
			nw := deploy(n, 200, 30, seed)
			plan := routing.BuildPlan(nw)
			sAna = append(sAna, sim.NewStatic(plan).RoundTime(spec, relayDelay))
			rt, err := sim.DESStaticRound(plan, relayDelay)
			if err != nil {
				return nil, err
			}
			sDes = append(sDes, rt.Finish)
			sPeak = append(sPeak, float64(rt.MaxQueue()))

			sol, err := planSHDG(nw)
			if err != nil {
				return nil, err
			}
			mAna = append(mAna, sol.Plan.RoundTime(spec))
			mrt, err := sim.DESMobileRound(nw, sol.Plan, spec)
			if err != nil {
				return nil, err
			}
			mDes = append(mDes, mrt.Finish)
		}
		t.AddRow(d(n), f2(stats.Mean(sAna)), f2(stats.Mean(sDes)),
			ratio(stats.Mean(sDes), stats.Mean(sAna)), f1(stats.Mean(sPeak)),
			f1(stats.Mean(mAna)), f1(stats.Mean(mDes)))
	}
	return t, nil
}
