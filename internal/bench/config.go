package bench

import (
	"fmt"

	"mobicol/internal/baselines"
	"mobicol/internal/check"
	"mobicol/internal/collector"
	"mobicol/internal/engine"
	"mobicol/internal/par"
	"mobicol/internal/shdgp"
	"mobicol/internal/tsp"
	"mobicol/internal/wsn"
)

// Config scales every experiment. The paper averages 500 random topologies
// per point; the default here is lighter so tables regenerate in seconds,
// and cmd/mdgbench -trials 500 reproduces the paper-scale averaging.
type Config struct {
	// Trials is the number of random topologies per parameter point.
	Trials int
	// Seed offsets the per-trial deployment seeds, making every table
	// reproducible and every trial independent.
	Seed uint64
	// Quick shrinks sweep ranges for use inside testing.B loops.
	Quick bool
	// Workers bounds the harness's per-trial fan-out: 1 runs trials
	// sequentially, n > 1 uses n workers, and <= 0 selects one worker
	// per CPU. Every value produces identical tables and quality fields
	// (trial seeds are fixed per index and reductions are ordered).
	Workers int
	// BenchN overrides the planner benchmark's deployment size
	// (default 100, the paper's evaluation setting); the field side
	// scales to keep density constant.
	BenchN int
	// Check verifies every plan the harness produces against the
	// internal/check invariant oracles and aborts the experiment on the
	// first violation. The equivalence tests run with it on; cmd/mdgbench
	// exposes it as -check.
	Check bool
	// ScaleSizes adds large-n single-trial rows to the planner benchmark
	// (cmd/mdgbench -scale); empty skips them.
	ScaleSizes []int
	// WarmStart adds warm-start repair columns to the shdg scale rows
	// (cmd/mdgbench -warm-start).
	WarmStart bool
	// Algos selects the engine planners the planner benchmark rows run
	// (cmd/mdgbench -algo); empty selects the standard committed trio.
	Algos []string
}

// DefaultConfig runs 30 trials per point.
func DefaultConfig() Config { return Config{Trials: 30, Seed: 1} }

// QuickConfig is the configuration the root benchmarks use.
func QuickConfig() Config { return Config{Trials: 3, Seed: 1, Quick: true} }

func (c Config) trials() int {
	if c.Trials <= 0 {
		return 30
	}
	return c.Trials
}

func (c Config) pool() par.Pool { return par.Workers(c.Workers) }

func (c Config) benchN() int {
	if c.BenchN <= 0 {
		return 100
	}
	return c.BenchN
}

// algos resolves the planner benchmark's algorithm rows. The default is
// the committed BENCH_planner.json trio, in its pinned order.
func (c Config) algos() []string {
	if len(c.Algos) == 0 {
		return []string{"shdg", "visit-all", "cla"}
	}
	return c.Algos
}

// deploy builds the trial's network. The experiment tables only use
// known-good parameters, so MustDeploy is safe here.
func deploy(n int, side, r float64, seed uint64) *wsn.Network {
	return wsn.MustDeploy(wsn.Config{N: n, FieldSide: side, Range: r, Seed: seed})
}

// planSHDG runs the default heuristic planner.
func planSHDG(nw *wsn.Network) (*shdgp.Solution, error) {
	return shdgp.Plan(shdgp.NewProblem(nw), shdgp.DefaultPlannerOptions())
}

// tspOpts is the tour configuration shared by the harness.
func tspOpts() tsp.Options { return tsp.DefaultOptions() }

// checkEnginePlan verifies an engine-produced plan against the invariant
// oracles when cfg.Check is set; the plan's own UploadDist hook covers
// planners (CLA) whose recorded stops are not the physical upload points.
func (c Config) checkEnginePlan(name string, nw *wsn.Network, pl *engine.Plan) error {
	if !c.Check {
		return nil
	}
	if err := check.Plan(nw, pl.Tour, check.Options{UploadDist: pl.UploadDist}); err != nil {
		return fmt.Errorf("bench: %s: %w", name, err)
	}
	return nil
}

// checkPlan verifies one harness-produced plan against the invariant
// oracles when cfg.Check is set. algo selects the oracle options: CLA
// plans record sweep-line endpoints as stops, so their single-hop check
// uses the perpendicular upload distance.
func (c Config) checkPlan(algo string, nw *wsn.Network, plan *collector.TourPlan) error {
	if !c.Check {
		return nil
	}
	opts := check.Options{}
	if algo == "cla" {
		opts.UploadDist = func(i int) float64 {
			return baselines.CLAUploadDistance(nw, plan, i)
		}
	}
	if err := check.Plan(nw, plan, opts); err != nil {
		return fmt.Errorf("bench: %s: %w", algo, err)
	}
	return nil
}
