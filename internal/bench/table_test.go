package bench

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		ID:     "EX",
		Title:  "sample",
		Header: []string{"a", "b"},
		Notes:  []string{"a note"},
	}
	t.AddRow("1", "2.5")
	t.AddRow("10", "3.5x")
	return t
}

func TestRenderAligned(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EX — sample", "a   b", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,b" || lines[1] != "1,2.5" {
		t.Fatalf("csv = %q", buf.String())
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## EX — sample", "| a | b |", "|---|---|", "| 10 | 3.5x |", "- a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
