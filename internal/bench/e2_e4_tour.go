package bench

import (
	"fmt"

	"mobicol/internal/baselines"
	"mobicol/internal/geom"
	"mobicol/internal/par"
	"mobicol/internal/shdgp"
	"mobicol/internal/stats"
	"mobicol/internal/tsp"
)

// tourRow gathers the three schemes' tour lengths for one parameter
// point. Trials fan out across the config's pool; per-trial seeds are
// fixed by trial index and the means fold in index order, so the row is
// identical for every pool size.
func tourRow(cfg Config, n int, side, r float64, tag uint64) (shdg, visitAll, cla geom.Meters, stops float64, err error) {
	type trialOut struct {
		shdg, visitAll, cla geom.Meters
		stops               float64
		err                 error
	}
	outs := par.Map(cfg.pool(), cfg.trials(), func(trial int) trialOut {
		seed := cfg.Seed + uint64(trial)*7919 + tag
		nw := deploy(n, side, r, seed)
		sol, err := planSHDG(nw)
		if err != nil {
			return trialOut{err: err}
		}
		if err := cfg.checkPlan("shdg", nw, sol.Plan); err != nil {
			return trialOut{err: err}
		}
		all, err := shdgp.PlanVisitAll(shdgp.NewProblem(nw), tsp.Options{Construction: tsp.ConstructGreedy, TwoOpt: true})
		if err != nil {
			return trialOut{err: err}
		}
		if err := cfg.checkPlan("visit-all", nw, all.Plan); err != nil {
			return trialOut{err: err}
		}
		claPlan, err := baselines.PlanCLA(nw)
		if err != nil {
			return trialOut{err: err}
		}
		if err := cfg.checkPlan("cla", nw, claPlan); err != nil {
			return trialOut{err: err}
		}
		return trialOut{shdg: sol.Length, visitAll: all.Length, cla: claPlan.Length(), stops: float64(sol.Stops())}
	})
	var sl, vl, cl []geom.Meters
	var st []float64
	for _, o := range outs {
		if o.err != nil {
			return 0, 0, 0, 0, o.err
		}
		sl = append(sl, o.shdg)
		vl = append(vl, o.visitAll)
		cl = append(cl, o.cla)
		st = append(st, o.stops)
	}
	return stats.Mean(sl), stats.Mean(vl), stats.Mean(cl), stats.Mean(st), nil
}

// E2TourVsN reproduces tour length as a function of the number of sensors
// (L = 200 m, R = 30 m): the SHDG plan vs the covering-line approximation
// vs visiting every sensor. Expected shape: SHDG flattens as density grows
// (more sensors per stop), visit-all keeps growing ~ sqrt(N·A), CLA is
// constant-ish once all lines are occupied.
func E2TourVsN(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "tour length vs number of sensors (L=200m, R=30m)",
		Header: []string{"N", "SHDG(m)", "stops", "CLA(m)", "visit-all(m)", "CLA/SHDG", "visit-all/SHDG"},
		Notes:  []string{fmt.Sprintf("%d trials per point", cfg.trials())},
	}
	ns := []int{100, 200, 300, 400, 500}
	if cfg.Quick {
		ns = []int{100, 200}
	}
	for _, n := range ns {
		s, v, c, stops, err := tourRow(cfg, n, 200, 30, uint64(n))
		if err != nil {
			return nil, err
		}
		t.AddRow(d(n), f1(s), f1(stops), f1(c), f1(v), ratio(c, s), ratio(v, s))
	}
	return t, nil
}

// E3TourVsRange reproduces tour length as a function of the transmission
// range (N = 200, L = 200 m). Larger ranges mean each stop covers more
// sensors, so the SHDG tour shrinks steeply; visit-all is unaffected.
func E3TourVsRange(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "tour length vs transmission range (N=200, L=200m)",
		Header: []string{"R(m)", "SHDG(m)", "stops", "CLA(m)", "visit-all(m)"},
		Notes:  []string{fmt.Sprintf("%d trials per point", cfg.trials())},
	}
	rs := []float64{20, 25, 30, 35, 40, 45, 50}
	if cfg.Quick {
		rs = []float64{20, 35, 50}
	}
	for _, r := range rs {
		s, v, c, stops, err := tourRow(cfg, 200, 200, r, uint64(r*10))
		if err != nil {
			return nil, err
		}
		t.AddRow(f1(r), f1(s), f1(stops), f1(c), f1(v))
	}
	return t, nil
}

// E4TourVsField reproduces tour length as a function of the field side
// (N = 400, R = 30 m). Sparser fields push every scheme's tour up; SHDG
// keeps the largest margin because stops amortise across fewer sensors.
func E4TourVsField(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "tour length vs field side (N=400, R=30m)",
		Header: []string{"L(m)", "SHDG(m)", "stops", "CLA(m)", "visit-all(m)", "disconnected nets"},
		Notes: []string{
			fmt.Sprintf("%d trials per point", cfg.trials()),
			"disconnected nets: fraction of trials whose unit-disk graph is disconnected — mobile schemes still serve them",
		},
	}
	sides := []float64{100, 200, 300, 400, 500}
	if cfg.Quick {
		sides = []float64{100, 300}
	}
	n := 400
	if cfg.Quick {
		n = 150
	}
	for _, side := range sides {
		s, v, c, stops, err := tourRow(cfg, n, side, 30, uint64(side))
		if err != nil {
			return nil, err
		}
		// Disconnection frequency over the same trials.
		disc := 0
		for trial := 0; trial < cfg.trials(); trial++ {
			seed := cfg.Seed + uint64(trial)*7919 + uint64(side)
			nw := deploy(n, side, 30, seed)
			if len(nw.Components()) > 1 {
				disc++
			}
		}
		t.AddRow(f1(side), f1(s), f1(stops), f1(c), f1(v),
			fmt.Sprintf("%d/%d", disc, cfg.trials()))
	}
	return t, nil
}
