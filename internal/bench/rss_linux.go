//go:build linux

package bench

import "syscall"

// peakRSSBytes returns the process's high-water resident set size.
// Linux reports ru_maxrss in kilobytes; the value is monotone over the
// process lifetime, so callers read it as "the largest thing so far".
func peakRSSBytes() uint64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return uint64(ru.Maxrss) * 1024
}
