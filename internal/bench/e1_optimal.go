package bench

import (
	"fmt"

	"mobicol/internal/baselines"
	"mobicol/internal/geom"
	"mobicol/internal/shdgp"
	"mobicol/internal/stats"
)

// E1OptimalGap reproduces the paper's small-network certification against
// the optimal solution (the paper used CPLEX; this repo uses the exact
// combinatorial solver cross-checked by the in-repo ILP). For each network
// size it reports the optimal, heuristic, and CLA tour lengths, the
// heuristic's gap, and the stop counts.
func E1OptimalGap(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "small networks: optimal vs heuristic vs CLA (70x70m, R=25m)",
		Header: []string{"N", "opt tour(m)", "heur tour(m)", "gap", "CLA tour(m)", "opt stops", "heur stops", "ILP min stops"},
		Notes: []string{
			"optimal = exact cover enumeration x Held-Karp; certified against the set-cover ILP",
			fmt.Sprintf("averages over %d seeded topologies per row", cfg.trials()),
		},
	}
	sizes := []int{10, 15, 20, 25}
	if cfg.Quick {
		sizes = []int{10, 15}
	}
	for _, n := range sizes {
		var optL, heurL, claL []geom.Meters
		var optStops, heurStops, ilpStops []int
		for trial := 0; trial < cfg.trials(); trial++ {
			seed := cfg.Seed + uint64(trial)*1000 + uint64(n)
			nw := deploy(n, 70, 25, seed)
			p := shdgp.NewProblem(nw)
			opt, err := shdgp.PlanExact(p, shdgp.DefaultExactLimits())
			if err != nil {
				return nil, fmt.Errorf("E1 N=%d trial %d: %w", n, trial, err)
			}
			heur, err := planSHDG(nw)
			if err != nil {
				return nil, err
			}
			cla, err := baselines.PlanCLA(nw)
			if err != nil {
				return nil, err
			}
			ilp, _, err := shdgp.MinStopsILP(p, 200000)
			if err != nil {
				return nil, err
			}
			optL = append(optL, opt.Length)
			heurL = append(heurL, heur.Length)
			claL = append(claL, cla.Length())
			optStops = append(optStops, opt.Stops())
			heurStops = append(heurStops, heur.Stops())
			ilpStops = append(ilpStops, ilp)
		}
		om, hm := stats.Mean(optL), stats.Mean(heurL)
		t.AddRow(d(n), f1(om), f1(hm), fmt.Sprintf("+%.1f%%", 100*(hm-om)/om),
			f1(stats.Mean(claL)), f2(stats.MeanInt(optStops)), f2(stats.MeanInt(heurStops)), f2(stats.MeanInt(ilpStops)))
	}
	return t, nil
}
