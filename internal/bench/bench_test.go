package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quick() Config { return Config{Trials: 2, Seed: 1, Quick: true} }

func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(tbl.Rows[row][col], "x"), "%"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func TestAllExperimentsRun(t *testing.T) {
	tables, err := All(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 16 {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s: empty table", tbl.ID)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Fatalf("%s: row width %d != header %d", tbl.ID, len(row), len(tbl.Header))
			}
		}
		var buf bytes.Buffer
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), tbl.ID) {
			t.Fatalf("%s: render missing ID", tbl.ID)
		}
	}
}

func TestE1HeuristicNeverBeatsOptimal(t *testing.T) {
	tbl, err := E1OptimalGap(quick())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		opt, heur := cell(t, tbl, r, 1), cell(t, tbl, r, 2)
		if heur < opt-1e-6 {
			t.Fatalf("row %d: heuristic %.2f beat 'optimal' %.2f — exact solver broken", r, heur, opt)
		}
	}
}

func TestE2ShapeSHDGBeatsBaselines(t *testing.T) {
	tbl, err := E2TourVsN(quick())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		shdg, cla, all := cell(t, tbl, r, 1), cell(t, tbl, r, 3), cell(t, tbl, r, 4)
		if shdg >= cla || shdg >= all {
			t.Fatalf("row %d: SHDG %.1f not shortest (CLA %.1f, visit-all %.1f)", r, shdg, cla, all)
		}
	}
}

func TestE3TourShrinksWithRange(t *testing.T) {
	tbl, err := E3TourVsRange(quick())
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, tbl, 0, 1)
	last := cell(t, tbl, len(tbl.Rows)-1, 1)
	if last >= first {
		t.Fatalf("SHDG tour did not shrink with range: %.1f -> %.1f", first, last)
	}
}

func TestE4TourGrowsWithField(t *testing.T) {
	tbl, err := E4TourVsField(quick())
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, tbl, 0, 1)
	last := cell(t, tbl, len(tbl.Rows)-1, 1)
	if last <= first {
		t.Fatalf("SHDG tour did not grow with field side: %.1f -> %.1f", first, last)
	}
}

func TestE6MobileOutlivesStatic(t *testing.T) {
	tbl, err := E6Lifetime(quick())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		shdg, static := cell(t, tbl, r, 1), cell(t, tbl, r, 4)
		if shdg <= static {
			t.Fatalf("row %d: shdg lifetime %.0f not beyond static %.0f", r, shdg, static)
		}
	}
}

func TestE7StaticFasterThanMobile(t *testing.T) {
	tbl, err := E7Latency(quick())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		shdg, static := cell(t, tbl, r, 1), cell(t, tbl, r, 4)
		if static >= shdg {
			t.Fatalf("row %d: static latency %.2f not below mobile %.2f", r, static, shdg)
		}
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("ByID(%s) missing", id)
		}
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID accepted unknown experiment")
	}
}

func TestDeterministicTables(t *testing.T) {
	a, err := E2TourVsN(quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := E2TourVsN(quick())
	if err != nil {
		t.Fatal(err)
	}
	for r := range a.Rows {
		for c := range a.Rows[r] {
			if a.Rows[r][c] != b.Rows[r][c] {
				t.Fatalf("E2 not deterministic at (%d,%d): %q vs %q", r, c, a.Rows[r][c], b.Rows[r][c])
			}
		}
	}
}
