package bench

import (
	"fmt"

	"mobicol/internal/mtsp"
	"mobicol/internal/stats"
)

// E5MultiCollector reproduces the multi-collector analysis: for
// applications with a per-round distance (time) constraint, how many
// collectors are needed as the bound tightens, and how the longest
// sub-tour shrinks as collectors are added. N = 300 sensors on a 300 m
// field, R = 30 m; stops come from the SHDG planner.
func E5MultiCollector(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "multi-collector splitting (N=300, L=300m, R=30m)",
		Header: []string{"constraint", "value", "collectors", "max sub-tour(m)", "total driving(m)"},
		Notes: []string{
			"top half: minimum collectors under a per-tour length bound",
			"bottom half: min-max sub-tour length with k collectors",
			fmt.Sprintf("%d trials per row", cfg.trials()),
		},
	}
	n, side := 300, 300.0
	if cfg.Quick {
		n, side = 120, 200
	}
	// The tightest bound must exceed the worst sink round trip: the field
	// corner is ~212 m from the centre sink, so 424 m is the floor.
	bounds := []float64{450, 600, 800, 1000, 1200}
	if cfg.Quick {
		bounds = []float64{400, 800}
	}
	for _, bound := range bounds {
		var ks, maxs, totals []float64
		for trial := 0; trial < cfg.trials(); trial++ {
			seed := cfg.Seed + uint64(trial)*104729 + uint64(bound)
			nw := deploy(n, side, 30, seed)
			sol, err := planSHDG(nw)
			if err != nil {
				return nil, err
			}
			mp, err := mtsp.MinCollectors(nw.Sink, sol.Plan.Stops, bound, tspOpts())
			if err != nil {
				return nil, fmt.Errorf("E5 bound=%v trial %d: %w", bound, trial, err)
			}
			ks = append(ks, float64(mp.K()))
			maxs = append(maxs, mp.MaxLength())
			totals = append(totals, mp.TotalLength())
		}
		t.AddRow("bound(m)", f1(bound), f2(stats.Mean(ks)), f1(stats.Mean(maxs)), f1(stats.Mean(totals)))
	}
	kvals := []int{1, 2, 3, 4, 6}
	if cfg.Quick {
		kvals = []int{1, 3}
	}
	for _, k := range kvals {
		var maxs, totals []float64
		for trial := 0; trial < cfg.trials(); trial++ {
			seed := cfg.Seed + uint64(trial)*104729 + uint64(k)
			nw := deploy(n, side, 30, seed)
			sol, err := planSHDG(nw)
			if err != nil {
				return nil, err
			}
			mp, err := mtsp.MinMaxSplit(nw.Sink, sol.Plan.Stops, k, tspOpts())
			if err != nil {
				return nil, err
			}
			maxs = append(maxs, mp.MaxLength())
			totals = append(totals, mp.TotalLength())
		}
		t.AddRow("k", d(k), d(k), f1(stats.Mean(maxs)), f1(stats.Mean(totals)))
	}
	return t, nil
}
