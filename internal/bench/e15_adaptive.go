package bench

import (
	"fmt"

	"mobicol/internal/sim"
	"mobicol/internal/stats"
)

// E15Adaptive measures degradation past the first death with re-planning:
// half-service life (rounds with at least half the fleet alive AND
// gathered) and the served fraction of survivors at that point. Mobile
// re-planning keeps every survivor served; the static sink's relay core
// dies first and strands the rest.
func E15Adaptive(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E15",
		Title:  "degradation beyond first death, with re-planning (L=200m, R=30m, 0.05J)",
		Header: []string{"N", "mobile first death", "mobile half-service", "static first death", "static half-service", "static served@half", "mobile replans"},
		Notes: []string{
			"half-service life = rounds until fewer than half the sensors are alive and served",
			fmt.Sprintf("%d trials per point", cfg.trials()),
		},
	}
	ns := []int{100, 200, 300}
	if cfg.Quick {
		ns = []int{100}
	}
	const horizon = 2_000_000
	for _, n := range ns {
		var mFirst, mHalf, sFirst, sHalf, sServed, mReplans []float64
		for trial := 0; trial < cfg.trials(); trial++ {
			seed := cfg.Seed + uint64(trial)*81041 + uint64(n)
			nw := deploy(n, 200, 30, seed)
			mob, err := sim.RunAdaptiveMobile(nw, lifetimeModel(), horizon)
			if err != nil {
				return nil, err
			}
			st, err := sim.RunAdaptiveStatic(nw, lifetimeModel(), horizon)
			if err != nil {
				return nil, err
			}
			mFirst = append(mFirst, float64(mob.FirstDeath))
			mHalf = append(mHalf, float64(mob.HalfLife))
			sFirst = append(sFirst, float64(st.FirstDeath))
			sHalf = append(sHalf, float64(st.HalfLife))
			sServed = append(sServed, st.ServedAtHalf)
			mReplans = append(mReplans, float64(mob.Replans))
		}
		t.AddRow(d(n), f1(stats.Mean(mFirst)), f1(stats.Mean(mHalf)),
			f1(stats.Mean(sFirst)), f1(stats.Mean(sHalf)),
			f2(stats.Mean(sServed)), f1(stats.Mean(mReplans)))
	}
	return t, nil
}
