package bench

import (
	"fmt"

	"mobicol/internal/collector"
	"mobicol/internal/geom"
	"mobicol/internal/shdgp"
	"mobicol/internal/sim"
	"mobicol/internal/stats"
)

// E16Rotation measures plan rotation: round-robin across structurally
// different plans averages each sensor's upload distance over rounds, so
// the first death (set by the worst per-round cost) arrives later, at the
// price of a longer worst-round tour.
func E16Rotation(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E16",
		Title:  "plan rotation for energy balancing (N=200, L=200m, R=30m, 0.05J)",
		Header: []string{"plans", "lifetime(rounds)", "vs single", "mean tour(m)", "worst round time(s)"},
		Notes: []string{
			"rotation alternates diverse covers round-robin; lifetime = rounds to first death",
			fmt.Sprintf("%d trials per row", cfg.trials()),
		},
	}
	ks := []int{1, 2, 4, 6}
	if cfg.Quick {
		ks = []int{1, 3}
	}
	n := 200
	if cfg.Quick {
		n = 100
	}
	const horizon = 2_000_000
	spec := collector.DefaultSpec()
	baseline := 0.0
	for ki, k := range ks {
		var rounds, times []float64
		var tours []geom.Meters
		for trial := 0; trial < cfg.trials(); trial++ {
			seed := cfg.Seed + uint64(trial)*91099
			nw := deploy(n, 200, 30, seed)
			sols, err := shdgp.PlanDiverse(shdgp.NewProblem(nw), k, tspOpts())
			if err != nil {
				return nil, err
			}
			plans := make([]*collector.TourPlan, len(sols))
			for i, s := range sols {
				plans[i] = s.Plan
			}
			rot, err := sim.NewRotation(fmt.Sprintf("rotate-%d", k), nw, plans)
			if err != nil {
				return nil, err
			}
			res, err := sim.RunLifetime(rot, nw.N(), lifetimeModel(), horizon)
			if err != nil {
				return nil, err
			}
			//mdglint:ignore unitcheck aggregation boundary: round counts averaged as float64 table statistics
			rounds = append(rounds, float64(res.Rounds))
			tours = append(tours, rot.TourLength())
			times = append(times, rot.RoundTime(spec, 0))
		}
		mean := stats.Mean(rounds)
		if ki == 0 {
			baseline = mean
		}
		t.AddRow(d(k), f1(mean), fmt.Sprintf("%+.1f%%", 100*(mean-baseline)/baseline),
			f1(stats.Mean(tours)), f1(stats.Mean(times)))
	}
	return t, nil
}
