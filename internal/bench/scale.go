package bench

import (
	"fmt"
	"math"

	"mobicol/internal/check"
	"mobicol/internal/obs"
	"mobicol/internal/replan"
	"mobicol/internal/shdgp"
	"mobicol/internal/tsp"
	"mobicol/internal/wsn"
)

// ScaleBench is one row of the scale table: one planner at one deployment
// size, plus the warm-start comparison where it applies. Quality fields
// (tour_m, stops, warm_ratio) are deterministic; the timing and RSS
// columns are machine-dependent by nature and never gated.
type ScaleBench struct {
	N     int     `json:"n"`
	Algo  string  `json:"algo"`
	TourM float64 `json:"tour_m"`
	Stops int     `json:"stops"`
	// PlanNs is one cold planning run end to end (deployment excluded);
	// PlansPerSec is its reciprocal, the column the README quotes.
	PlanNs      int64   `json:"plan_ns"`
	PlansPerSec float64 `json:"plans_per_sec"`
	// PeakRSSBytes is the process's high-water resident set after the
	// run (Linux getrusage; 0 where unsupported). It is monotone across
	// rows of one invocation, so order rows smallest-first to read it as
	// a per-size ceiling.
	PeakRSSBytes uint64 `json:"peak_rss_bytes"`
	// Warm-start columns (shdg rows with warm measurement enabled): a
	// ~1% scenario delta is applied, and warm repair is compared to a
	// cold replan of the perturbed scenario.
	WarmNs      int64   `json:"warm_ns,omitempty"`
	WarmSpeedup float64 `json:"warm_speedup,omitempty"`
	WarmRatio   float64 `json:"warm_ratio,omitempty"`
	WarmDirty   int     `json:"warm_dirty,omitempty"`
}

// scalePerturbFrac is the scenario-delta size the warm columns measure:
// 1% of sensors touched, the "small repair" regime the subsystem targets.
const scalePerturbFrac = 0.01

// ScaleSizes returns the default scale-row deployment sizes.
func ScaleSizes() []int { return []int{10_000, 100_000} }

// ScaleBenchmarks measures large-n planning: one trial per (n, algo)
// point at cfg.Seed, field side scaled to hold the paper's density.
// Every size runs shdg; sizes <= 10k also run visit-all (the visit-all
// tour at n=100k is pure TSP wall time with no covering insight to buy).
// With warm set, shdg rows also measure warm-start repair after a ~1%
// delta: repair time, speedup over a cold replan, and the warm/cold
// quality ratio, which must stay within check.MaxWarmRatio.
func ScaleBenchmarks(cfg Config, sizes []int, warm bool) ([]ScaleBench, error) {
	rows := make([]ScaleBench, 0, 2*len(sizes))
	for _, n := range sizes {
		if n <= 0 {
			return nil, fmt.Errorf("bench: scale size %d", n)
		}
		row, err := scaleSHDG(cfg, n, warm)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if n <= 10_000 {
			va, err := scaleVisitAll(cfg, n)
			if err != nil {
				return nil, err
			}
			rows = append(rows, va)
		}
	}
	return rows, nil
}

// scaleDeploy builds the benchmark deployment for size n: density held at
// the paper's evaluation setting (100 sensors per 200x200m).
func scaleDeploy(cfg Config, n int) *wsn.Network {
	side := 200.0 * math.Sqrt(float64(n)/100.0)
	return deploy(n, side, 30.0, cfg.Seed)
}

func scaleSHDG(cfg Config, n int, warm bool) (ScaleBench, error) {
	nw := scaleDeploy(cfg, n)
	p := shdgp.NewProblem(nw)
	p.Pool = cfg.pool()
	w := obs.StartWatch()
	sol, err := shdgp.Plan(p, shdgp.DefaultPlannerOptions())
	planNs := w.ElapsedNs()
	if err != nil {
		return ScaleBench{}, fmt.Errorf("bench: scale shdg n=%d: %w", n, err)
	}
	if err := cfg.checkPlan("shdg", nw, sol.Plan); err != nil {
		return ScaleBench{}, err
	}
	row := ScaleBench{
		N:    n,
		Algo: "shdg",
		//mdglint:ignore unitcheck JSON boundary: scale rows store tour lengths as raw float64
		TourM:        float64(sol.Length),
		Stops:        sol.Stops(),
		PlanNs:       planNs,
		PlansPerSec:  1e9 / float64(planNs),
		PeakRSSBytes: peakRSSBytes(),
	}
	if !warm {
		return row, nil
	}

	d := replan.Perturb(nw, scalePerturbFrac, cfg.Seed+1)
	nw2, carried, err := d.Apply(nw, sol.Plan.UploadAt)
	if err != nil {
		return ScaleBench{}, fmt.Errorf("bench: scale warm n=%d: %w", n, err)
	}
	p2 := shdgp.NewProblem(nw2)
	p2.Pool = cfg.pool()
	w = obs.StartWatch()
	cold, err := shdgp.Plan(p2, shdgp.DefaultPlannerOptions())
	coldNs := w.ElapsedNs()
	if err != nil {
		return ScaleBench{}, fmt.Errorf("bench: scale cold replan n=%d: %w", n, err)
	}
	w = obs.StartWatch()
	warmPlan, st, err := replan.Repair(nw2, sol.Plan, carried, replan.Options{Pool: cfg.pool()})
	warmNs := w.ElapsedNs()
	if err != nil {
		return ScaleBench{}, fmt.Errorf("bench: scale warm repair n=%d: %w", n, err)
	}
	// The repaired plan is held to the full oracle and the pinned quality
	// ratio unconditionally — a warm path that trades correctness or
	// quality for speed would otherwise look like a win here.
	if err := check.Plan(nw2, warmPlan, check.Options{}); err != nil {
		return ScaleBench{}, fmt.Errorf("bench: scale warm repair n=%d: %w", n, err)
	}
	if err := check.WarmQuality(warmPlan.Length(), cold.Length); err != nil {
		return ScaleBench{}, fmt.Errorf("bench: scale warm repair n=%d: %w", n, err)
	}
	row.WarmNs = warmNs
	row.WarmSpeedup = float64(coldNs) / float64(warmNs)
	row.WarmRatio = check.WarmRatio(warmPlan.Length(), cold.Length)
	row.WarmDirty = st.Dirty()
	row.PeakRSSBytes = peakRSSBytes()
	return row, nil
}

func scaleVisitAll(cfg Config, n int) (ScaleBench, error) {
	nw := scaleDeploy(cfg, n)
	p := shdgp.NewProblem(nw)
	p.Pool = cfg.pool()
	w := obs.StartWatch()
	sol, err := shdgp.PlanVisitAll(p, tsp.DefaultOptions())
	planNs := w.ElapsedNs()
	if err != nil {
		return ScaleBench{}, fmt.Errorf("bench: scale visit-all n=%d: %w", n, err)
	}
	if err := cfg.checkPlan("visit-all", nw, sol.Plan); err != nil {
		return ScaleBench{}, err
	}
	return ScaleBench{
		N:    n,
		Algo: "visit-all",
		//mdglint:ignore unitcheck JSON boundary: scale rows store tour lengths as raw float64
		TourM:        float64(sol.Length),
		Stops:        sol.Stops(),
		PlanNs:       planNs,
		PlansPerSec:  1e9 / float64(planNs),
		PeakRSSBytes: peakRSSBytes(),
	}, nil
}
