package bench

import (
	"fmt"
	"strings"

	"mobicol/internal/cover"
	"mobicol/internal/geom"
	"mobicol/internal/shdgp"
	"mobicol/internal/stats"
	"mobicol/internal/tsp"
)

// E8Ablations quantifies the planner's design choices on a fixed workload
// (N = 150, L = 200 m, R = 30 m): candidate-generation strategy, tour
// construction/improvement stages, and the refinement loop.
func E8Ablations(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "planner ablations (N=150, L=200m, R=30m)",
		Header: []string{"variant", "tour(m)", "stops", "vs default"},
		Notes:  []string{fmt.Sprintf("%d trials per variant; same seeds across variants", cfg.trials())},
	}
	n := 150
	if cfg.Quick {
		n = 80
	}

	type variant struct {
		name  string
		strat cover.CandidateStrategy
		opts  shdgp.PlannerOptions
	}
	def := shdgp.DefaultPlannerOptions()
	noRefine := def
	noRefine.Refine = false
	nnOnly := shdgp.PlannerOptions{TSP: tsp.Options{Construction: tsp.ConstructNN}, Refine: true, RefinePasses: 3}
	noOrOpt := def
	noOrOpt.TSP.OrOpt = false
	christo := def
	christo.TSP.Construction = tsp.ConstructChristofides
	variants := []variant{
		{"default (sites, greedy-edge+2opt+oropt, refine)", cover.SensorSites, def},
		{"candidates: field grid (20m)", cover.FieldGrid, def},
		{"candidates: circle intersections", cover.Intersections, def},
		{"no refinement", cover.SensorSites, noRefine},
		{"tour: raw nearest-neighbor", cover.SensorSites, nnOnly},
		{"tour: no Or-opt", cover.SensorSites, noOrOpt},
		{"tour: christofides construction", cover.SensorSites, christo},
		{"heuristic: SPT-sweep instead of global greedy", cover.SensorSites, def},
	}
	if cfg.Quick {
		variants = variants[:4]
	}

	baseline := geom.Meters(0)
	for vi, v := range variants {
		sweep := strings.HasPrefix(v.name, "heuristic: SPT-sweep")
		var lens []geom.Meters
		var stops []float64
		for trial := 0; trial < cfg.trials(); trial++ {
			seed := cfg.Seed + uint64(trial)*31013
			nw := deploy(n, 200, 30, seed)
			p := shdgp.NewProblem(nw)
			p.Strategy = v.strat
			var sol *shdgp.Solution
			var err error
			if sweep {
				sol, err = shdgp.PlanSweep(p, v.opts.TSP)
			} else {
				sol, err = shdgp.Plan(p, v.opts)
			}
			if err != nil {
				return nil, fmt.Errorf("E8 %q trial %d: %w", v.name, trial, err)
			}
			if err := sol.Validate(p); err != nil {
				return nil, fmt.Errorf("E8 %q produced invalid plan: %w", v.name, err)
			}
			lens = append(lens, sol.Length)
			stops = append(stops, float64(sol.Stops()))
		}
		mean := stats.Mean(lens)
		if vi == 0 {
			baseline = mean
		}
		t.AddRow(v.name, f1(mean), f2(stats.Mean(stops)),
			fmt.Sprintf("%+.1f%%", 100*(mean-baseline)/baseline))
	}
	return t, nil
}

// All runs every experiment and returns the tables in order.
func All(cfg Config) ([]*Table, error) {
	runs := []func(Config) (*Table, error){
		E1OptimalGap, E2TourVsN, E3TourVsRange, E4TourVsField,
		E5MultiCollector, E6Lifetime, E7Latency, E8Ablations,
		E9BufferCapacity, E10DESLatency,
		E11Obstacles, E12LossyLinks, E13Scheduling, E14Hetero, E15Adaptive, E16Rotation,
	}
	var out []*Table
	for _, run := range runs {
		tbl, err := run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, tbl)
	}
	return out, nil
}

// ByID returns the experiment runner for an ID like "E3".
func ByID(id string) (func(Config) (*Table, error), bool) {
	m := map[string]func(Config) (*Table, error){
		"E1": E1OptimalGap, "E2": E2TourVsN, "E3": E3TourVsRange, "E4": E4TourVsField,
		"E5": E5MultiCollector, "E6": E6Lifetime, "E7": E7Latency, "E8": E8Ablations,
		"E9": E9BufferCapacity, "E10": E10DESLatency,
		"E11": E11Obstacles, "E12": E12LossyLinks, "E13": E13Scheduling, "E14": E14Hetero, "E15": E15Adaptive, "E16": E16Rotation,
	}
	f, ok := m[id]
	return f, ok
}
