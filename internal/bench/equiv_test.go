package bench

import (
	"math"
	"testing"
)

// TestPlannerBenchmarksWorkerEquivalence pins the tentpole contract for
// the harness layer: the quality fields of BENCH_planner.json must be
// bit-identical whether trials run sequentially or fanned out.
func TestPlannerBenchmarksWorkerEquivalence(t *testing.T) {
	seqRes, err := PlannerBenchmarks(Config{Trials: 4, Seed: 3, Workers: 1, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := PlannerBenchmarks(Config{Trials: 4, Seed: 3, Workers: 8, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRes.Algos) != len(parRes.Algos) {
		t.Fatalf("algo counts differ: %d vs %d", len(seqRes.Algos), len(parRes.Algos))
	}
	for i, sa := range seqRes.Algos {
		pa := parRes.Algos[i]
		if sa.Algo != pa.Algo {
			t.Fatalf("algo %d: %q vs %q", i, sa.Algo, pa.Algo)
		}
		if math.Float64bits(sa.MeanTourM) != math.Float64bits(pa.MeanTourM) {
			t.Fatalf("%s: mean_tour_m %v (seq) vs %v (par)", sa.Algo, sa.MeanTourM, pa.MeanTourM)
		}
		if math.Float64bits(sa.MeanStops) != math.Float64bits(pa.MeanStops) {
			t.Fatalf("%s: mean_stops %v (seq) vs %v (par)", sa.Algo, sa.MeanStops, pa.MeanStops)
		}
		if len(sa.Spans) != len(pa.Spans) {
			t.Fatalf("%s: span name counts differ", sa.Algo)
		}
		for name, n := range sa.Spans {
			if pa.Spans[name] != n {
				t.Fatalf("%s: span %q recorded %d times parallel, %d sequential",
					sa.Algo, name, pa.Spans[name], n)
			}
		}
	}
}

// TestTourRowWorkerEquivalence does the same for the experiment tables'
// per-trial fan-out.
func TestTourRowWorkerEquivalence(t *testing.T) {
	type row struct{ shdg, visitAll, cla, stops float64 }
	get := func(workers int) row {
		s, v, c, st, err := tourRow(Config{Trials: 3, Seed: 5, Workers: workers, Check: true}, 100, 200, 30, 7)
		if err != nil {
			t.Fatal(err)
		}
		return row{float64(s), float64(v), float64(c), st}
	}
	seqRow, parRow := get(1), get(8)
	pairs := [4][2]float64{
		{seqRow.shdg, parRow.shdg},
		{seqRow.visitAll, parRow.visitAll},
		{seqRow.cla, parRow.cla},
		{seqRow.stops, parRow.stops},
	}
	for i, p := range pairs {
		if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
			t.Fatalf("column %d: %v (seq) vs %v (par)", i, p[0], p[1])
		}
	}
}
