package bench

import (
	"math"
	"strings"
	"testing"

	"mobicol/internal/check"
)

// TestScaleBenchmarksSmall drives the scale harness end to end at a
// small n (the machinery is size-independent; CI runs the real 10k
// smoke). Both algorithms must produce rows, the warm columns must be
// populated on the shdg row only, and the quality ratio must honour the
// pinned bound the harness itself enforces.
func TestScaleBenchmarksSmall(t *testing.T) {
	cfg := Config{Trials: 1, Seed: 1, Workers: 1, Check: true}
	rows, err := ScaleBenchmarks(cfg, []int{300}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want shdg + visit-all", len(rows))
	}
	shdg, va := rows[0], rows[1]
	if shdg.Algo != "shdg" || va.Algo != "visit-all" {
		t.Fatalf("row order %q, %q", shdg.Algo, va.Algo)
	}
	for _, r := range rows {
		if r.N != 300 || r.TourM <= 0 || r.Stops <= 0 || r.PlanNs <= 0 || r.PlansPerSec <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	if shdg.WarmNs <= 0 || shdg.WarmSpeedup <= 0 || shdg.WarmDirty <= 0 {
		t.Errorf("warm columns not populated: %+v", shdg)
	}
	if shdg.WarmRatio > check.MaxWarmRatio+0.01 {
		t.Errorf("warm ratio %v above pinned bound", shdg.WarmRatio)
	}
	if va.WarmNs != 0 || va.WarmRatio != 0 {
		t.Errorf("visit-all row grew warm columns: %+v", va)
	}
}

// TestScaleBenchmarksDeterministicQuality: the gated columns (tour,
// stops, warm ratio) must be bit-identical across runs and worker
// counts; only timing and RSS may differ.
func TestScaleBenchmarksDeterministicQuality(t *testing.T) {
	a, err := ScaleBenchmarks(Config{Trials: 1, Seed: 1, Workers: 1}, []int{300}, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScaleBenchmarks(Config{Trials: 1, Seed: 1, Workers: 8}, []int{300}, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Float64bits(a[i].TourM) != math.Float64bits(b[i].TourM) ||
			a[i].Stops != b[i].Stops ||
			math.Float64bits(a[i].WarmRatio) != math.Float64bits(b[i].WarmRatio) {
			t.Errorf("row %d quality differs across worker counts:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestScaleBenchmarksBadSize(t *testing.T) {
	if _, err := ScaleBenchmarks(Config{Trials: 1, Seed: 1, Workers: 1}, []int{0}, false); err == nil {
		t.Fatal("size 0 accepted")
	}
}

// TestCompareScale pins the perf-gate policy for the scale rows:
// deterministic columns bit-exact, warm-column presence structural,
// timing never compared, missing baseline rows structural, and an
// empty baseline gating nothing.
func TestCompareScale(t *testing.T) {
	base := []ScaleBench{{N: 10_000, Algo: "shdg", TourM: 100, Stops: 5, PlanNs: 1, WarmRatio: 1.01}}

	same := []ScaleBench{{N: 10_000, Algo: "shdg", TourM: 100, Stops: 5, PlanNs: 999, WarmRatio: 1.01}}
	if bad := compareScale(base, same); len(bad) != 0 {
		t.Errorf("timing-only delta flagged: %v", bad)
	}

	cases := []struct {
		name string
		cur  []ScaleBench
		want string
	}{
		{"tour", []ScaleBench{{N: 10_000, Algo: "shdg", TourM: 101, Stops: 5, WarmRatio: 1.01}}, "tour_m"},
		{"stops", []ScaleBench{{N: 10_000, Algo: "shdg", TourM: 100, Stops: 6, WarmRatio: 1.01}}, "stops"},
		{"ratio", []ScaleBench{{N: 10_000, Algo: "shdg", TourM: 100, Stops: 5, WarmRatio: 1.02}}, "warm_ratio"},
		{"columns", []ScaleBench{{N: 10_000, Algo: "shdg", TourM: 100, Stops: 5}}, "warm columns"},
		{"missing", nil, "missing"},
	}
	for _, tc := range cases {
		bad := compareScale(base, tc.cur)
		if len(bad) == 0 || !strings.Contains(strings.Join(bad, "\n"), tc.want) {
			t.Errorf("%s: want a finding mentioning %q, got %v", tc.name, tc.want, bad)
		}
	}

	if bad := compareScale(nil, same); len(bad) != 0 {
		t.Errorf("empty baseline must gate nothing, got %v", bad)
	}
}
