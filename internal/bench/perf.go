package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// This file is the comparison half of the performance ratchet
// (cmd/mdgperf): read two BENCH_planner.json artifacts — the committed
// baseline and a fresh run — and decide whether the fresh run regressed.
//
// The policy mirrors how trustworthy each field is:
//
//   - mean_tour_m / mean_stops are deterministic outputs of seeded
//     algorithms, so they must be bit-identical; a change means the
//     algorithm changed, which is a correctness signal, not noise.
//   - spans counts are deterministic for a fixed trial count: a span
//     appearing or disappearing means the phase structure changed.
//   - allocs_per_op is compared exactly in the regression direction:
//     allocation counts are stable run-to-run (they are not wall-clock),
//     and the repo's zero-alloc policy treats any increase as a bug.
//   - bytes_per_op and phase_ns are machine- and load-dependent, so they
//     get relative tolerance bands, and phase_ns additionally gets an
//     absolute noise floor so sub-millisecond phases cannot trip the
//     gate on scheduler jitter.

// PerfPolicy sets the tolerance bands for ComparePerf.
type PerfPolicy struct {
	// PhaseTol is the allowed relative growth of each phase_ns entry
	// (0.5 = +50%).
	PhaseTol float64
	// BytesTol is the allowed relative growth of bytes_per_op.
	BytesTol float64
	// MinPhaseNs is an absolute slack added to every phase bound, so
	// phases near the clock's granularity are judged on the absolute
	// scale rather than the relative one.
	MinPhaseNs int64
}

// DefaultPerfPolicy tolerates +50% wall time plus 5ms of absolute slack
// per phase and +20% bytes. Tight enough to catch a complexity-class
// slip on the committed n=100 instance family, loose enough for a noisy
// shared runner; allocs remain exact regardless.
func DefaultPerfPolicy() PerfPolicy {
	return PerfPolicy{PhaseTol: 0.5, BytesTol: 0.2, MinPhaseNs: 5_000_000}
}

// ReadPlannerBench decodes one BENCH_planner.json artifact and checks
// its schema tag.
func ReadPlannerBench(r io.Reader) (*PlannerBenchResult, error) {
	var res PlannerBenchResult
	dec := json.NewDecoder(r)
	if err := dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("bench: planner artifact: %w", err)
	}
	if res.Schema != PlannerBenchSchema {
		return nil, fmt.Errorf("bench: planner artifact schema %q, want %q (regenerate with mdgbench -bench-out or mdgperf -update)", res.Schema, PlannerBenchSchema)
	}
	return &res, nil
}

// ComparePerf checks a fresh run against the baseline under the policy
// and returns one human-readable line per violation (empty = pass).
func ComparePerf(base, cur *PlannerBenchResult, pol PerfPolicy) []string {
	var bad []string
	if base.N != cur.N || base.Trials != cur.Trials || base.Seed != cur.Seed {
		bad = append(bad, fmt.Sprintf(
			"config mismatch: baseline (n=%d trials=%d seed=%d) vs current (n=%d trials=%d seed=%d); rerun with matching flags or -update",
			base.N, base.Trials, base.Seed, cur.N, cur.Trials, cur.Seed))
		return bad
	}
	curBy := map[string]*PlannerAlgoBench{}
	for i := range cur.Algos {
		curBy[cur.Algos[i].Algo] = &cur.Algos[i]
	}
	for i := range base.Algos {
		b := &base.Algos[i]
		c := curBy[b.Algo]
		if c == nil {
			bad = append(bad, fmt.Sprintf("%s: algorithm missing from current run", b.Algo))
			continue
		}
		bad = append(bad, compareAlgo(b, c, pol)...)
	}
	bad = append(bad, compareScale(base.Scale, cur.Scale)...)
	return bad
}

// compareScale gates the deterministic columns of the scale rows: tour
// quality and the warm/cold ratio are seeded-algorithm outputs, so a
// change means the algorithm changed. Timing and RSS columns are never
// compared. A baseline without scale rows gates nothing (the CI perf run
// skips the large-n sweep); a baseline row missing from the current run
// is a structural regression.
func compareScale(base, cur []ScaleBench) []string {
	if len(base) == 0 {
		return nil
	}
	var bad []string
	curBy := map[string]*ScaleBench{}
	for i := range cur {
		curBy[fmt.Sprintf("%s@%d", cur[i].Algo, cur[i].N)] = &cur[i]
	}
	for i := range base {
		b := &base[i]
		key := fmt.Sprintf("%s@%d", b.Algo, b.N)
		c := curBy[key]
		if c == nil {
			bad = append(bad, fmt.Sprintf("scale %s: row missing from current run", key))
			continue
		}
		if math.Float64bits(b.TourM) != math.Float64bits(c.TourM) {
			bad = append(bad, fmt.Sprintf("scale %s: tour_m changed: %v -> %v (deterministic field)", key, b.TourM, c.TourM))
		}
		if b.Stops != c.Stops {
			bad = append(bad, fmt.Sprintf("scale %s: stops changed: %d -> %d (deterministic field)", key, b.Stops, c.Stops))
		}
		// Zero is the omitempty sentinel for "warm columns absent", not a
		// computed quantity, so the exact compare is the intended test.
		//mdglint:ignore floateq 0 is the absent-column sentinel, not a computed value
		if (b.WarmRatio != 0) != (c.WarmRatio != 0) {
			bad = append(bad, fmt.Sprintf("scale %s: warm columns appeared/disappeared (baseline ratio %v, current %v)", key, b.WarmRatio, c.WarmRatio))
			//mdglint:ignore floateq 0 is the absent-column sentinel; the value compare is bitwise
		} else if b.WarmRatio != 0 && math.Float64bits(b.WarmRatio) != math.Float64bits(c.WarmRatio) {
			bad = append(bad, fmt.Sprintf("scale %s: warm_ratio changed: %v -> %v (deterministic field)", key, b.WarmRatio, c.WarmRatio))
		}
	}
	return bad
}

// compareAlgo applies the per-field policy to one algorithm row.
func compareAlgo(b, c *PlannerAlgoBench, pol PerfPolicy) []string {
	var bad []string
	// Quality fields are deterministic: bit-identical or the algorithm
	// itself changed (which requires a deliberate -update).
	if math.Float64bits(b.MeanTourM) != math.Float64bits(c.MeanTourM) {
		bad = append(bad, fmt.Sprintf("%s: mean_tour_m changed: %v -> %v (deterministic field; algorithm output changed)", b.Algo, b.MeanTourM, c.MeanTourM))
	}
	if math.Float64bits(b.MeanStops) != math.Float64bits(c.MeanStops) {
		bad = append(bad, fmt.Sprintf("%s: mean_stops changed: %v -> %v (deterministic field; algorithm output changed)", b.Algo, b.MeanStops, c.MeanStops))
	}
	if c.AllocsPerOp > b.AllocsPerOp {
		bad = append(bad, fmt.Sprintf("%s: allocs_per_op %d -> %d (exact gate: any increase is a regression)", b.Algo, b.AllocsPerOp, c.AllocsPerOp))
	}
	if limit := uint64(float64(b.BytesPerOp) * (1 + pol.BytesTol)); c.BytesPerOp > limit {
		bad = append(bad, fmt.Sprintf("%s: bytes_per_op %d -> %d (limit %d at +%.0f%%)", b.Algo, b.BytesPerOp, c.BytesPerOp, limit, pol.BytesTol*100))
	}
	for _, name := range sortedKeys(b.PhaseNs) {
		baseNs := b.PhaseNs[name]
		curNs, ok := c.PhaseNs[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: phase %q missing from current run", b.Algo, name))
			continue
		}
		limit := int64(float64(baseNs)*(1+pol.PhaseTol)) + pol.MinPhaseNs
		if curNs > limit {
			bad = append(bad, fmt.Sprintf("%s: phase %q %dns -> %dns (limit %dns at +%.0f%% + %dns slack)",
				b.Algo, name, baseNs, curNs, limit, pol.PhaseTol*100, pol.MinPhaseNs))
		}
	}
	for _, name := range sortedKeys(b.Spans) {
		if c.Spans[name] != b.Spans[name] {
			bad = append(bad, fmt.Sprintf("%s: span count %q changed: %d -> %d (deterministic for a fixed trial count)", b.Algo, name, b.Spans[name], c.Spans[name]))
		}
	}
	return bad
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	//mdglint:ignore determinism keys are collected and then sorted; iteration order never reaches the output
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MedianPerf folds k runs of the same configuration into one result by
// taking the per-field median (lower median for even k) of the noisy
// fields — phase_ns, allocs_per_op, bytes_per_op — per algorithm. The
// deterministic fields are taken from the first run; feeding it runs of
// different configurations is an error. Medians shed one-off scheduler
// spikes, which is what mdgperf -k buys.
func MedianPerf(runs []*PlannerBenchResult) (*PlannerBenchResult, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("bench: MedianPerf of zero runs")
	}
	first := runs[0]
	for _, r := range runs[1:] {
		if r.N != first.N || r.Trials != first.Trials || r.Seed != first.Seed || len(r.Algos) != len(first.Algos) {
			return nil, fmt.Errorf("bench: MedianPerf over mixed configurations")
		}
	}
	out := *first
	out.Algos = make([]PlannerAlgoBench, len(first.Algos))
	for i := range first.Algos {
		row := first.Algos[i]
		row.PhaseNs = make(map[string]int64, len(first.Algos[i].PhaseNs))
		row.Spans = make(map[string]int, len(first.Algos[i].Spans))
		for name, n := range first.Algos[i].Spans {
			row.Spans[name] = n
		}
		for _, name := range sortedKeys(first.Algos[i].PhaseNs) {
			vals := make([]int64, 0, len(runs))
			for _, r := range runs {
				vals = append(vals, r.Algos[i].PhaseNs[name])
			}
			sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
			row.PhaseNs[name] = vals[(len(vals)-1)/2]
		}
		allocs := make([]uint64, 0, len(runs))
		bytesPer := make([]uint64, 0, len(runs))
		for _, r := range runs {
			allocs = append(allocs, r.Algos[i].AllocsPerOp)
			bytesPer = append(bytesPer, r.Algos[i].BytesPerOp)
		}
		sort.Slice(allocs, func(a, b int) bool { return allocs[a] < allocs[b] })
		sort.Slice(bytesPer, func(a, b int) bool { return bytesPer[a] < bytesPer[b] })
		row.AllocsPerOp = allocs[(len(allocs)-1)/2]
		row.BytesPerOp = bytesPer[(len(bytesPer)-1)/2]
		out.Algos[i] = row
	}
	return &out, nil
}
