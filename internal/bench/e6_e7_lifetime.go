package bench

import (
	"fmt"

	"mobicol/internal/baselines"
	"mobicol/internal/collector"
	"mobicol/internal/energy"
	"mobicol/internal/geom"
	"mobicol/internal/routing"
	"mobicol/internal/sim"
	"mobicol/internal/stats"
	"mobicol/internal/wsn"
)

// lifetimeModel shrinks batteries so lifetimes land in the hundreds of
// rounds instead of hundreds of thousands.
func lifetimeModel() energy.Model {
	m := energy.DefaultModel()
	m.InitialJ = 0.05
	return m
}

// buildAllSchemes constructs the four schemes for one deployment.
func buildAllSchemes(nw *wsn.Network) ([]sim.Scheme, error) {
	sol, err := planSHDG(nw)
	if err != nil {
		return nil, err
	}
	claPlan, err := baselines.PlanCLA(nw)
	if err != nil {
		return nil, err
	}
	slPlan, err := baselines.PlanStraightLine(nw, 2)
	if err != nil {
		return nil, err
	}
	return []sim.Scheme{
		sim.NewMobile("shdg", nw, sol.Plan),
		sim.NewCLA(nw, claPlan),
		sim.NewStraightLine(slPlan),
		sim.NewStatic(routing.BuildPlan(nw)),
	}, nil
}

// E6Lifetime reproduces the network-lifetime comparison: rounds until the
// first sensor death for the mobile single-hop scheme vs the CLA sweep,
// the fixed straight-line mule with in-network relay, and the static sink.
// Expected shape: shdg ≈ cla >> straight-line > static, with the margin
// over the static sink widening as N grows (the sink-adjacent relays
// saturate).
func E6Lifetime(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "network lifetime in gathering rounds (L=200m, R=30m, 0.05J batteries)",
		Header: []string{"N", "shdg", "cla", "straight-line", "static-sink", "shdg/static", "residual-std shdg", "residual-std static"},
		Notes: []string{
			"lifetime = rounds to first death; residual std measured at each scheme's own death round",
			fmt.Sprintf("%d trials per point", cfg.trials()),
		},
	}
	ns := []int{100, 200, 300, 400}
	if cfg.Quick {
		ns = []int{100, 200}
	}
	const horizon = 2_000_000
	for _, n := range ns {
		acc := map[string][]float64{}
		var stdMobile, stdStatic []energy.Joules
		for trial := 0; trial < cfg.trials(); trial++ {
			seed := cfg.Seed + uint64(trial)*6151 + uint64(n)
			nw := deploy(n, 200, 30, seed)
			schemes, err := buildAllSchemes(nw)
			if err != nil {
				return nil, err
			}
			for _, s := range schemes {
				res, err := sim.RunLifetime(s, nw.N(), lifetimeModel(), horizon)
				if err != nil {
					return nil, err
				}
				//mdglint:ignore unitcheck aggregation boundary: round counts averaged as float64 table statistics
				acc[s.Name()] = append(acc[s.Name()], float64(res.Rounds))
				switch s.Name() {
				case "shdg":
					stdMobile = append(stdMobile, res.Residual.Std)
				case "static-sink":
					stdStatic = append(stdStatic, res.Residual.Std)
				}
			}
		}
		shdg := stats.Mean(acc["shdg"])
		static := stats.Mean(acc["static-sink"])
		t.AddRow(d(n), f1(shdg), f1(stats.Mean(acc["cla"])), f1(stats.Mean(acc["straight-line"])),
			f1(static), ratio(shdg, static),
			fmt.Sprintf("%.4f", stats.Mean(stdMobile)), fmt.Sprintf("%.4f", stats.Mean(stdStatic)))
	}
	return t, nil
}

// E7Latency reproduces the per-round data-collection latency comparison:
// the price of mobility. The collector drives at 1 m/s; multi-hop relay
// forwards a packet in 5 ms per hop (the paper cites relay speeds of
// several hundred m/s — orders of magnitude above vehicle speed).
func E7Latency(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "per-round collection latency in seconds (1 m/s collector, 5 ms/hop relay)",
		Header: []string{"N", "shdg(s)", "cla(s)", "straight-line(s)", "static-sink(s)", "shdg tour(m)"},
		Notes:  []string{fmt.Sprintf("%d trials per point", cfg.trials())},
	}
	ns := []int{100, 200, 300, 400}
	if cfg.Quick {
		ns = []int{100, 200}
	}
	spec := collector.DefaultSpec()
	const relayDelay = 0.005
	for _, n := range ns {
		acc := map[string][]float64{}
		var tours []geom.Meters
		for trial := 0; trial < cfg.trials(); trial++ {
			seed := cfg.Seed + uint64(trial)*6151 + uint64(n)
			nw := deploy(n, 200, 30, seed)
			schemes, err := buildAllSchemes(nw)
			if err != nil {
				return nil, err
			}
			for _, s := range schemes {
				lat := sim.MeasureLatency(s, spec, relayDelay)
				acc[s.Name()] = append(acc[s.Name()], lat.Seconds)
				if s.Name() == "shdg" {
					tours = append(tours, lat.TourM)
				}
			}
		}
		t.AddRow(d(n), f1(stats.Mean(acc["shdg"])), f1(stats.Mean(acc["cla"])),
			f1(stats.Mean(acc["straight-line"])), f2(stats.Mean(acc["static-sink"])), f1(stats.Mean(tours)))
	}
	return t, nil
}
