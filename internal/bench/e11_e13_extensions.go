package bench

import (
	"fmt"

	"mobicol/internal/collector"
	"mobicol/internal/geom"
	"mobicol/internal/obstacle"
	"mobicol/internal/radio"
	"mobicol/internal/routing"
	"mobicol/internal/schedule"
	"mobicol/internal/sim"
	"mobicol/internal/stats"
	"mobicol/internal/wsn"
)

// obstacleCourse builds k disjoint rectangular obstacles in a deterministic
// staggered layout over an L×L field, keeping the centre (sink) clear.
func obstacleCourse(k int, side float64) (*obstacle.Course, error) {
	var polys []obstacle.Polygon
	// Staggered grid of obstacle slots avoiding the centre cell.
	slots := []struct{ fx, fy float64 }{
		{0.15, 0.15}, {0.65, 0.2}, {0.2, 0.65}, {0.7, 0.7},
		{0.42, 0.12}, {0.12, 0.42}, {0.72, 0.45}, {0.45, 0.75},
	}
	if k > len(slots) {
		return nil, fmt.Errorf("bench: at most %d obstacles supported, asked %d", len(slots), k)
	}
	size := 0.18 * side
	for i := 0; i < k; i++ {
		x, y := slots[i].fx*side, slots[i].fy*side
		polys = append(polys, obstacle.Rectangle(geom.NewRect(geom.Pt(x, y), geom.Pt(x+size, y+size))))
	}
	return obstacle.NewCourse(polys...)
}

// E11Obstacles measures the obstacle-aware planner: driven tour length and
// detour factor as obstacles are added to the field (SenCar-style
// trajectory planning around obstacles).
func E11Obstacles(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "obstacle-aware planning: detour vs obstacle count (N=120, L=200m, R=30m)",
		Header: []string{"obstacles", "driven(m)", "euclidean(m)", "detour", "stops"},
		Notes: []string{
			"obstacles block movement, not radio; tours thread the visibility graph",
			fmt.Sprintf("%d trials per row", cfg.trials()),
		},
	}
	counts := []int{0, 2, 4, 6, 8}
	if cfg.Quick {
		counts = []int{0, 4}
	}
	n := 120
	if cfg.Quick {
		n = 60
	}
	for _, k := range counts {
		course, err := obstacleCourse(k, 200)
		if err != nil {
			return nil, err
		}
		var driven, euclid, detour, stops []float64
		for trial := 0; trial < cfg.trials(); trial++ {
			seed := cfg.Seed + uint64(trial)*41023 + uint64(k)
			nw, err := obstacle.DeployAround(wsn.Config{N: n, FieldSide: 200, Range: 30, Seed: seed}, course)
			if err != nil {
				return nil, fmt.Errorf("E11 k=%d trial %d: %w", k, trial, err)
			}
			tour, err := obstacle.PlanTour(nw, course)
			if err != nil {
				return nil, fmt.Errorf("E11 k=%d trial %d: %w", k, trial, err)
			}
			driven = append(driven, tour.Length)
			euclid = append(euclid, tour.Euclidean)
			detour = append(detour, tour.DetourFactor())
			stops = append(stops, float64(len(tour.Stops)))
		}
		t.AddRow(d(k), f1(stats.Mean(driven)), f1(stats.Mean(euclid)),
			fmt.Sprintf("%.3fx", stats.Mean(detour)), f2(stats.Mean(stops)))
	}
	return t, nil
}

// E12LossyLinks replays the lifetime and delivery comparison under the
// transitional-region link model: retransmissions raise everyone's bill,
// but multi-hop chains also compound per-hop losses, so the static sink
// loses both lifetime and delivery.
func E12LossyLinks(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "lossy links: lifetime and delivery vs link quality (N=200, L=200m, R=30m)",
		Header: []string{"link model", "mobile rounds", "static rounds", "ratio", "mobile delivery", "static delivery"},
		Notes:  []string{fmt.Sprintf("%d trials per row; ARQ budget 3 retransmissions", cfg.trials())},
	}
	models := []struct {
		name string
		rm   radio.Model
	}{
		{"perfect", radio.Perfect()},
		{"mild (d50=1.10R)", radio.Model{D50: 1.10, Width: 0.08, MaxRetries: 3}},
		{"default (d50=0.95R)", radio.Default()},
		{"harsh (d50=0.80R)", radio.Model{D50: 0.80, Width: 0.10, MaxRetries: 3}},
	}
	if cfg.Quick {
		models = models[:2]
	}
	n := 200
	if cfg.Quick {
		n = 100
	}
	const horizon = 2_000_000
	for _, mc := range models {
		var mr, sr, md, sd []float64
		for trial := 0; trial < cfg.trials(); trial++ {
			seed := cfg.Seed + uint64(trial)*52067
			nw := deploy(n, 200, 30, seed)
			sol, err := planSHDG(nw)
			if err != nil {
				return nil, err
			}
			mob := sim.NewLossyMobile("mobile", nw, sol.Plan, mc.rm)
			static := sim.NewLossyStatic(routing.BuildPlan(nw), mc.rm)
			a, err := sim.RunLifetime(mob, nw.N(), lifetimeModel(), horizon)
			if err != nil {
				return nil, err
			}
			b, err := sim.RunLifetime(static, nw.N(), lifetimeModel(), horizon)
			if err != nil {
				return nil, err
			}
			//mdglint:ignore unitcheck aggregation boundary: round counts averaged as float64 table statistics
			mr = append(mr, float64(a.Rounds))
			//mdglint:ignore unitcheck aggregation boundary: round counts averaged as float64 table statistics
			sr = append(sr, float64(b.Rounds))
			md = append(md, mob.DeliveryRatio())
			sd = append(sd, static.DeliveryRatio())
		}
		t.AddRow(mc.name, f1(stats.Mean(mr)), f1(stats.Mean(sr)),
			ratio(stats.Mean(mr), stats.Mean(sr)), f2(stats.Mean(md)), f2(stats.Mean(sd)))
	}
	return t, nil
}

// E13Scheduling measures visit-frequency scheduling: data-loss fraction of
// the fixed cyclic tour vs EDF as per-sensor generation rates rise past
// the cyclic tour's feasibility point, plus the analytic minimum feasible
// collector speed.
func E13Scheduling(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "visit scheduling under buffer deadlines (N=120, L=200m, R=30m, buffer 40 packets/stop)",
		Header: []string{"workload", "rate(pkt/s/sensor)", "min speed(m/s) (feasible)", "cyclic loss", "EDF loss", "EDF/cyclic visits"},
		Notes: []string{
			"loss = fraction of generated packets dropped to full stop buffers over an 8-round horizon",
			"hotspot = one stop at 20x the base rate: the regime where deadline-driven visiting pays",
			"myopic EDF ignores travel cost, so it loses to the cycle under uniform load — a known",
			"pathology of deadline-only mobile-element scheduling (cf. Somasundara et al.)",
			fmt.Sprintf("%d trials per row", cfg.trials()),
		},
	}
	rates := []float64{0.002, 0.005, 0.01, 0.02, 0.04}
	if cfg.Quick {
		rates = []float64{0.002, 0.02}
	}
	n := 120
	if cfg.Quick {
		n = 60
	}
	spec := collector.DefaultSpec()
	const buffer = 40.0
	for _, hotspot := range []bool{false, true} {
		for _, rate := range rates {
			var minV []geom.MetersPerSecond
			var cycLoss, edfLoss, visitRatio []float64
			for trial := 0; trial < cfg.trials(); trial++ {
				seed := cfg.Seed + uint64(trial)*61027
				nw := deploy(n, 200, 30, seed)
				sol, err := planSHDG(nw)
				if err != nil {
					return nil, err
				}
				demands := schedule.DemandsFromPlan(sol.Plan, rate, buffer)
				if hotspot && len(demands) > 0 {
					demands[0].Rate *= 20
				}
				if v, err := schedule.MinSpeed(sol.Plan, demands, spec.UploadTime); err == nil {
					minV = append(minV, v)
				} // else: infeasible at any speed; excluded from the mean
				horizon := 8 * sol.Plan.RoundTime(spec)
				cyc, err := schedule.Run(sol.Plan, demands, spec, schedule.Cyclic, horizon)
				if err != nil {
					return nil, err
				}
				edf, err := schedule.Run(sol.Plan, demands, spec, schedule.EDF, horizon)
				if err != nil {
					return nil, err
				}
				cycLoss = append(cycLoss, cyc.LossFraction())
				edfLoss = append(edfLoss, edf.LossFraction())
				if cyc.Visits > 0 {
					visitRatio = append(visitRatio, float64(edf.Visits)/float64(cyc.Visits))
				}
			}
			label := "uniform"
			if hotspot {
				label = "hotspot"
			}
			minSpeed := "inf"
			if len(minV) > 0 {
				minSpeed = fmt.Sprintf("%s (%d/%d)", f2(stats.Mean(minV)), len(minV), cfg.trials())
			}
			t.AddRow(label, fmt.Sprintf("%.3f", rate), minSpeed,
				fmt.Sprintf("%.3f", stats.Mean(cycLoss)), fmt.Sprintf("%.3f", stats.Mean(edfLoss)),
				f2(stats.Mean(visitRatio)))
		}
	}
	return t, nil
}
