//go:build !linux

package bench

// peakRSSBytes reports 0 on platforms without a getrusage peak-RSS
// reading; the scale table documents 0 as "unsupported here".
func peakRSSBytes() uint64 { return 0 }
