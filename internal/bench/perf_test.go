package bench

import (
	"strings"
	"testing"
)

// basePerf builds a baseline-shaped result for the comparison tests.
func basePerf() *PlannerBenchResult {
	return &PlannerBenchResult{
		Schema: PlannerBenchSchema,
		Trials: 5, Seed: 1, N: 100, SideM: 200, RangeM: 30,
		Meta: PlannerBenchMeta{Workers: 1, TrialsPerPhase: 5},
		Algos: []PlannerAlgoBench{{
			Algo:        "shdg",
			MeanTourM:   779.4097257411898,
			MeanStops:   18,
			PhaseNs:     map[string]int64{"plan": 2_000_000, "tsp": 700_000},
			Spans:       map[string]int{"plan": 5, "tsp": 5},
			AllocsPerOp: 1000, BytesPerOp: 50_000,
		}},
	}
}

// clonePerf deep-copies a result so tests can perturb one side.
func clonePerf(r *PlannerBenchResult) *PlannerBenchResult {
	out := *r
	out.Algos = make([]PlannerAlgoBench, len(r.Algos))
	for i, a := range r.Algos {
		row := a
		row.PhaseNs = map[string]int64{}
		for k, v := range a.PhaseNs {
			row.PhaseNs[k] = v
		}
		row.Spans = map[string]int{}
		for k, v := range a.Spans {
			row.Spans[k] = v
		}
		out.Algos[i] = row
	}
	return &out
}

func assertViolation(t *testing.T, bad []string, want string) {
	t.Helper()
	for _, b := range bad {
		if strings.Contains(b, want) {
			return
		}
	}
	t.Errorf("no violation mentioning %q in %v", want, bad)
}

func TestComparePerfClean(t *testing.T) {
	pol := DefaultPerfPolicy()
	cur := clonePerf(basePerf())
	// Noise inside the bands must pass: +40% wall, +10% bytes, fewer allocs.
	cur.Algos[0].PhaseNs["plan"] = 2_800_000
	cur.Algos[0].BytesPerOp = 55_000
	cur.Algos[0].AllocsPerOp = 900
	if bad := ComparePerf(basePerf(), cur, pol); len(bad) != 0 {
		t.Fatalf("in-band run flagged: %v", bad)
	}
}

func TestComparePerfViolations(t *testing.T) {
	pol := DefaultPerfPolicy()
	base := basePerf()

	cur := clonePerf(base)
	cur.Algos[0].PhaseNs["plan"] = 100_000_000
	assertViolation(t, ComparePerf(base, cur, pol), `phase "plan"`)

	cur = clonePerf(base)
	cur.Algos[0].AllocsPerOp = 1001 // any increase trips the exact gate
	assertViolation(t, ComparePerf(base, cur, pol), "allocs_per_op")

	cur = clonePerf(base)
	cur.Algos[0].BytesPerOp = 100_000
	assertViolation(t, ComparePerf(base, cur, pol), "bytes_per_op")

	cur = clonePerf(base)
	cur.Algos[0].MeanTourM += 1e-9 // bit-identical or bust
	assertViolation(t, ComparePerf(base, cur, pol), "mean_tour_m")

	cur = clonePerf(base)
	cur.Algos[0].Spans["tsp"] = 6
	assertViolation(t, ComparePerf(base, cur, pol), "span count")

	cur = clonePerf(base)
	delete(cur.Algos[0].PhaseNs, "tsp")
	assertViolation(t, ComparePerf(base, cur, pol), "missing")

	cur = clonePerf(base)
	cur.Algos[0].Algo = "renamed"
	assertViolation(t, ComparePerf(base, cur, pol), "algorithm missing")

	cur = clonePerf(base)
	cur.Seed = 2
	bad := ComparePerf(base, cur, pol)
	if len(bad) != 1 {
		t.Fatalf("config mismatch must short-circuit, got %v", bad)
	}
	assertViolation(t, bad, "config mismatch")
}

func TestComparePerfNoiseFloor(t *testing.T) {
	// A 1000ns phase tripling is still far under the absolute slack:
	// tiny phases must be judged on the absolute scale.
	base := basePerf()
	base.Algos[0].PhaseNs["tiny"] = 1000
	base.Algos[0].Spans["tiny"] = 5
	cur := clonePerf(base)
	cur.Algos[0].PhaseNs["tiny"] = 3000
	if bad := ComparePerf(base, cur, DefaultPerfPolicy()); len(bad) != 0 {
		t.Fatalf("sub-slack phase growth flagged: %v", bad)
	}
}

func TestMedianPerf(t *testing.T) {
	runs := []*PlannerBenchResult{clonePerf(basePerf()), clonePerf(basePerf()), clonePerf(basePerf())}
	runs[0].Algos[0].PhaseNs["plan"] = 9_000_000 // spike
	runs[1].Algos[0].PhaseNs["plan"] = 2_000_000
	runs[2].Algos[0].PhaseNs["plan"] = 2_100_000
	runs[0].Algos[0].AllocsPerOp = 1000
	runs[1].Algos[0].AllocsPerOp = 1002
	runs[2].Algos[0].AllocsPerOp = 1001
	med, err := MedianPerf(runs)
	if err != nil {
		t.Fatal(err)
	}
	if got := med.Algos[0].PhaseNs["plan"]; got != 2_100_000 {
		t.Errorf("median plan = %d, want 2100000 (spike must not survive)", got)
	}
	if got := med.Algos[0].AllocsPerOp; got != 1001 {
		t.Errorf("median allocs = %d, want 1001", got)
	}
	if med.Algos[0].MeanTourM != basePerf().Algos[0].MeanTourM {
		t.Errorf("deterministic fields must pass through untouched")
	}

	if _, err := MedianPerf(nil); err == nil {
		t.Error("MedianPerf(nil) must error")
	}
	mixed := []*PlannerBenchResult{clonePerf(basePerf()), clonePerf(basePerf())}
	mixed[1].Seed = 9
	if _, err := MedianPerf(mixed); err == nil {
		t.Error("MedianPerf over mixed configurations must error")
	}
}

func TestReadPlannerBenchSchemaGate(t *testing.T) {
	v2 := `{"schema":"mobicol/bench-planner/v2","trials":5}`
	if _, err := ReadPlannerBench(strings.NewReader(v2)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("v2 artifact must be rejected with a schema error, got %v", err)
	}
	v3 := `{"schema":"mobicol/bench-planner/v3","trials":5,"seed":1,"n":100,"meta":{"workers":1,"trials_per_phase":5},"algos":[]}`
	res, err := ReadPlannerBench(strings.NewReader(v3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Meta.Workers != 1 || res.Meta.TrialsPerPhase != 5 {
		t.Errorf("meta not decoded: %+v", res.Meta)
	}
	if _, err := ReadPlannerBench(strings.NewReader("not json")); err == nil {
		t.Error("garbage artifact must error")
	}
}
