package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	// Sample std with n-1: sqrt(32/7).
	if math.Abs(s.Std-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.Median-4.5) > 1e-12 {
		t.Fatalf("Median = %v", s.Median)
	}
}

func TestSummarizeEmptyAndSingleton(t *testing.T) {
	if s := Summarize[float64](nil); s.N != 0 {
		t.Fatalf("empty = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.CI95 != 0 || s.Median != 7 {
		t.Fatalf("singleton = %+v", s)
	}
}

func TestSummarizeRejectsNaN(t *testing.T) {
	// NaN samples are dropped, not propagated: the summary over
	// {1, NaN, 3} must equal the summary over {1, 3}.
	s := Summarize([]float64{1, math.NaN(), 3})
	if s.N != 2 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("NaN not rejected: %+v", s)
	}
	if math.IsNaN(s.Std) || math.IsNaN(s.Median) {
		t.Fatalf("NaN leaked into derived statistics: %+v", s)
	}
	// An all-NaN sample degenerates to the empty summary.
	if s := Summarize([]float64{math.NaN(), math.NaN()}); s.N != 0 {
		t.Fatalf("all-NaN sample = %+v, want zero Summary", s)
	}
	// The input slice must not be mutated by the filtering.
	xs := []float64{math.NaN(), 5}
	_ = Summarize(xs)
	if !math.IsNaN(xs[0]) || xs[1] != 5 {
		t.Fatalf("Summarize mutated its input: %v", xs)
	}
}

func TestPercentileSingleSample(t *testing.T) {
	// Every percentile of a single sample is that sample.
	for _, p := range []float64{0, 10, 50, 90, 100} {
		if got := Percentile([]float64{42}, p); got != 42 {
			t.Fatalf("P%v of singleton = %v, want 42", p, got)
		}
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 0}, {100, 40}, {50, 20}, {25, 10}, {12.5, 5},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestMeanHelpers(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if Mean[float64](nil) != 0 || MeanInt[int](nil) != 0 {
		t.Fatal("empty means should be 0")
	}
	if MeanInt([]int{1, 2}) != 1.5 {
		t.Fatal("MeanInt wrong")
	}
}

// Property: Min <= P10 <= Median <= P90 <= Max and Mean within [Min, Max].
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P10+1e-9 && s.P10 <= s.Median+1e-9 &&
			s.Median <= s.P90+1e-9 && s.P90 <= s.Max+1e-9 &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
