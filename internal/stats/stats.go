// Package stats provides the summary statistics the experiment harness
// reports: means, standard deviations, 95% confidence intervals, and
// percentiles over repeated trials.
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N        int
	Mean     float64
	Std      float64 // sample standard deviation (n-1)
	Min, Max float64
	CI95     float64 // half-width of the 95% confidence interval
	Median   float64
	P10, P90 float64
}

// Summarize computes a Summary over xs. An empty sample yields the zero
// Summary. NaN samples are rejected before any statistic is computed —
// a single NaN would otherwise poison the mean, std, and every
// percentile — so a sample of only NaNs also yields the zero Summary.
//
// The sample type is any float64-underlying type, so dimensioned
// quantities (geom.Meters, energy.Joules) summarise without laundering
// the dimension at every call site; the Summary itself reports raw
// float64 aggregates for tables and JSON.
func Summarize[F ~float64](sample []F) Summary {
	xs := dropNaN(sample)
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(n-1))
		// Normal-approximation CI: 1.96 * s / sqrt(n). The harness runs
		// enough trials (>= 30) for the CLT to make this honest.
		s.CI95 = 1.96 * s.Std / math.Sqrt(float64(n))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 50)
	s.P10 = Percentile(sorted, 10)
	s.P90 = Percentile(sorted, 90)
	return s
}

// Percentile returns the p-th percentile (0-100) of sorted xs by linear
// interpolation. xs must be sorted ascending and non-empty.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// dropNaN converts xs to raw float64, dropping NaN entries.
func dropNaN[F ~float64](xs []F) []float64 {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(float64(x)) {
			clean = append(clean, float64(x))
		}
	}
	return clean
}

// Mean returns the arithmetic mean (0 for empty). Like Summarize it is
// generic over float64-underlying sample types and preserves the
// dimension: the mean of metres is metres.
func Mean[F ~float64](xs []F) F {
	if len(xs) == 0 {
		return 0
	}
	sum := F(0)
	for _, x := range xs {
		sum += x
	}
	return sum / F(len(xs))
}

// MeanInt returns the mean of integer samples as a raw float64.
func MeanInt[I ~int](xs []I) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := I(0)
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}
