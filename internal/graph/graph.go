// Package graph provides the weighted-graph substrate for the planners:
// adjacency-list graphs, breadth-first search, Dijkstra shortest paths,
// minimum spanning trees (Prim and Kruskal), union–find, connected
// components, and rooted-tree utilities. Vertices are dense integers
// [0, N), which maps directly onto sensor IDs.
package graph

import "fmt"

// Edge is a weighted edge between vertices U and V.
type Edge struct {
	U, V int
	W    float64
}

// Graph is an undirected weighted graph in adjacency-list form.
type Graph struct {
	n   int
	adj [][]Arc
	m   int
}

// Arc is one direction of an edge as stored in an adjacency list.
type Arc struct {
	To int
	W  float64
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		//mdglint:ignore nopanic documented precondition on a programmer-supplied size, like make with a negative length
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, adj: make([][]Arc, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge (u, v) with weight w. Self-loops are
// rejected; parallel edges are permitted (the algorithms tolerate them).
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		//mdglint:ignore nopanic self-loops are construction bugs in this codebase's geometric graphs, not data conditions
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	g.checkVertex(u)
	g.checkVertex(v)
	g.adj[u] = append(g.adj[u], Arc{v, w})
	g.adj[v] = append(g.adj[v], Arc{u, w})
	g.m++
}

func (g *Graph) checkVertex(v int) {
	if v < 0 || v >= g.n {
		//mdglint:ignore nopanic bounds check mirroring slice-index semantics
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// Neighbors returns the adjacency list of v. Callers must not mutate it.
func (g *Graph) Neighbors(v int) []Arc {
	g.checkVertex(v)
	return g.adj[v]
}

// Degree returns the number of incident edge endpoints at v.
func (g *Graph) Degree(v int) int {
	g.checkVertex(v)
	return len(g.adj[v])
}

// Edges returns every undirected edge once (u < v for parallel-free
// graphs; parallel edges appear with multiplicity).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, a := range g.adj[u] {
			if u < a.To {
				out = append(out, Edge{u, a.To, a.W})
			}
		}
	}
	return out
}

// HasEdge reports whether at least one edge joins u and v.
func (g *Graph) HasEdge(u, v int) bool {
	g.checkVertex(u)
	g.checkVertex(v)
	// Scan the shorter list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, a := range g.adj[u] {
		if a.To == v {
			return true
		}
	}
	return false
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	sum := 0.0
	for u := 0; u < g.n; u++ {
		for _, a := range g.adj[u] {
			if u < a.To {
				sum += a.W
			}
		}
	}
	return sum
}
