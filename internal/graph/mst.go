package graph

import (
	"math"
	"sort"
)

// MST computes a minimum spanning forest of g with Prim's algorithm and
// returns its edges and total weight. For a disconnected graph every
// component contributes its own tree.
func MST(g *Graph) (edges []Edge, total float64) {
	n := g.N()
	if n == 0 {
		return nil, 0
	}
	inTree := make([]bool, n)
	best := make([]float64, n)
	from := make([]int, n)
	for i := range best {
		best[i] = math.Inf(1)
		from[i] = -1
	}
	h := newIndexedHeap(n)
	for start := 0; start < n; start++ {
		if inTree[start] {
			continue
		}
		best[start] = 0
		h.push(start, 0)
		for h.len() > 0 {
			u, _ := h.pop()
			if inTree[u] {
				continue
			}
			inTree[u] = true
			if from[u] >= 0 {
				edges = append(edges, Edge{from[u], u, best[u]})
				total += best[u]
			}
			for _, a := range g.adj[u] {
				if !inTree[a.To] && a.W < best[a.To] {
					best[a.To] = a.W
					from[a.To] = u
					h.push(a.To, a.W)
				}
			}
		}
	}
	return edges, total
}

// KruskalMST computes the same minimum spanning forest with Kruskal's
// algorithm. It exists both as a cross-check in tests and because the
// multi-collector splitter wants edges in ascending weight order.
func KruskalMST(g *Graph) (edges []Edge, total float64) {
	all := g.Edges()
	sort.Slice(all, func(i, j int) bool { return all[i].W < all[j].W })
	uf := NewUnionFind(g.N())
	for _, e := range all {
		if uf.Union(e.U, e.V) {
			edges = append(edges, e)
			total += e.W
		}
	}
	return edges, total
}

// CompleteEuclideanMST computes the MST of the complete graph whose vertex
// weights are given by the dist function, in O(n²) time and O(n) memory —
// the dense Prim variant. This is what tour lower bounds use: building an
// explicit n² edge list for 500 stops would be wasteful.
func CompleteEuclideanMST(n int, dist func(i, j int) float64) (parent []int, total float64) {
	if n == 0 {
		return nil, 0
	}
	parent = make([]int, n)
	best := make([]float64, n)
	inTree := make([]bool, n)
	for i := range best {
		best[i] = math.Inf(1)
		parent[i] = -1
	}
	best[0] = 0
	for iter := 0; iter < n; iter++ {
		u, ud := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !inTree[v] && best[v] < ud {
				u, ud = v, best[v]
			}
		}
		if u < 0 {
			break
		}
		inTree[u] = true
		total += ud
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := dist(u, v); d < best[v] {
					best[v] = d
					parent[v] = u
				}
			}
		}
	}
	return parent, total
}
