package graph

import (
	"math"
	"testing"
	"testing/quick"

	"mobicol/internal/rng"
)

// line returns the path graph 0-1-2-...-(n-1) with unit weights.
func line(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

// randomGraph returns a random graph on n vertices where each pair is
// joined with probability p and a uniform weight in [1, 10).
func randomGraph(s *rng.Source, n int, p float64) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s.Bool(p) {
				g.AddEdge(i, j, s.Uniform(1, 10))
			}
		}
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2.5)
	g.AddEdge(1, 2, 1.5)
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatal("Degree wrong")
	}
	if got := g.TotalWeight(); got != 4 {
		t.Fatalf("TotalWeight = %v", got)
	}
	if len(g.Edges()) != 2 {
		t.Fatal("Edges wrong")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	New(3).AddEdge(1, 1, 1)
}

func TestVertexRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range vertex did not panic")
		}
	}()
	New(3).AddEdge(0, 3, 1)
}

func TestBFSLine(t *testing.T) {
	g := line(5)
	r := BFS(g, 0)
	for i := 0; i < 5; i++ {
		if r.Dist[i] != i {
			t.Fatalf("Dist[%d] = %d", i, r.Dist[i])
		}
	}
	path := r.PathTo(4)
	want := []int{0, 1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("PathTo(4) = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("PathTo(4) = %v", path)
		}
	}
	if r.MaxDist() != 4 {
		t.Fatalf("MaxDist = %d", r.MaxDist())
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	r := BFS(g, 0)
	if r.Reached(2) || r.Reached(3) {
		t.Fatal("unreachable vertices reported reached")
	}
	if r.PathTo(2) != nil {
		t.Fatal("PathTo unreachable should be nil")
	}
}

func TestMultiBFSNearestSource(t *testing.T) {
	g := line(7)
	r := MultiBFS(g, []int{0, 6})
	wantDist := []int{0, 1, 2, 3, 2, 1, 0}
	for i, w := range wantDist {
		if r.Dist[i] != w {
			t.Fatalf("Dist[%d] = %d, want %d", i, r.Dist[i], w)
		}
	}
}

func TestMultiBFSDuplicateSources(t *testing.T) {
	g := line(3)
	r := MultiBFS(g, []int{0, 0, 0})
	if r.Dist[2] != 2 {
		t.Fatalf("Dist[2] = %d", r.Dist[2])
	}
}

func TestDijkstraVsBFSOnUnitWeights(t *testing.T) {
	s := rng.New(40)
	for trial := 0; trial < 20; trial++ {
		g := New(30)
		for i := 0; i < 30; i++ {
			for j := i + 1; j < 30; j++ {
				if s.Bool(0.1) {
					g.AddEdge(i, j, 1)
				}
			}
		}
		bfs := BFS(g, 0)
		dij := Dijkstra(g, 0)
		for v := 0; v < 30; v++ {
			if bfs.Reached(v) != dij.Reached(v) {
				t.Fatalf("reachability disagrees at %d", v)
			}
			if bfs.Reached(v) && float64(bfs.Dist[v]) != dij.Dist[v] {
				t.Fatalf("unit-weight distance disagrees at %d: %d vs %v", v, bfs.Dist[v], dij.Dist[v])
			}
		}
	}
}

func TestDijkstraKnownGraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 4)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 1, 2)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 5)
	r := Dijkstra(g, 0)
	want := []float64{0, 3, 1, 4, math.Inf(1)}
	for i, w := range want {
		if r.Dist[i] != w {
			t.Fatalf("Dist[%d] = %v, want %v", i, r.Dist[i], w)
		}
	}
	path := r.PathTo(3)
	wantPath := []int{0, 2, 1, 3}
	for i := range wantPath {
		if path[i] != wantPath[i] {
			t.Fatalf("PathTo(3) = %v", path)
		}
	}
}

// Property: Dijkstra distances satisfy the triangle inequality over edges:
// dist[v] <= dist[u] + w(u,v) for every edge.
func TestQuickDijkstraRelaxed(t *testing.T) {
	s := rng.New(41)
	f := func() bool {
		g := randomGraph(s, 2+s.Intn(40), 0.15)
		r := Dijkstra(g, 0)
		for _, e := range g.Edges() {
			if r.Dist[e.V] > r.Dist[e.U]+e.W+1e-9 || r.Dist[e.U] > r.Dist[e.V]+e.W+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(6)
	if uf.Sets() != 6 {
		t.Fatal("initial set count wrong")
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) || uf.Union(0, 1) {
		t.Fatal("Union return values wrong")
	}
	if !uf.Connected(0, 1) || uf.Connected(1, 2) {
		t.Fatal("Connected wrong")
	}
	uf.Union(1, 3)
	if !uf.Connected(0, 2) {
		t.Fatal("transitive connection missing")
	}
	if uf.Sets() != 3 { // {0,1,2,3}, {4}, {5}
		t.Fatalf("Sets = %d", uf.Sets())
	}
}

func TestMSTKnown(t *testing.T) {
	// Square with diagonal: MST weight = 1+1+1 = 3.
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 2)
	g.AddEdge(0, 2, 3)
	edges, total := MST(g)
	if len(edges) != 3 || total != 3 {
		t.Fatalf("MST total = %v with %d edges", total, len(edges))
	}
}

func TestMSTMatchesKruskal(t *testing.T) {
	s := rng.New(42)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(s, 3+s.Intn(50), 0.3)
		_, prim := MST(g)
		_, kruskal := KruskalMST(g)
		if math.Abs(prim-kruskal) > 1e-9 {
			t.Fatalf("Prim %v != Kruskal %v", prim, kruskal)
		}
	}
}

func TestMSTForest(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 2) // two components + isolated vertex 4
	edges, total := MST(g)
	if len(edges) != 2 || total != 3 {
		t.Fatalf("forest MST = %v edges, total %v", len(edges), total)
	}
}

func TestCompleteEuclideanMSTMatchesSparse(t *testing.T) {
	s := rng.New(43)
	for trial := 0; trial < 10; trial++ {
		n := 3 + s.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i], ys[i] = s.Uniform(0, 100), s.Uniform(0, 100)
		}
		dist := func(i, j int) float64 { return math.Hypot(xs[i]-xs[j], ys[i]-ys[j]) }
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g.AddEdge(i, j, dist(i, j))
			}
		}
		_, want := MST(g)
		_, got := CompleteEuclideanMST(n, dist)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("dense MST %v != sparse MST %v", got, want)
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	comps, comp := Components(g)
	if len(comps) != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("got %d components", len(comps))
	}
	if comp[0] != comp[2] || comp[0] == comp[3] || comp[5] == comp[6] {
		t.Fatal("component labels wrong")
	}
	if IsConnected(g) {
		t.Fatal("disconnected graph reported connected")
	}
	if !IsConnected(line(5)) {
		t.Fatal("line reported disconnected")
	}
}

// Property: MST edge count equals N - #components.
func TestQuickMSTEdgeCount(t *testing.T) {
	s := rng.New(44)
	f := func() bool {
		g := randomGraph(s, 2+s.Intn(40), 0.1)
		comps, _ := Components(g)
		edges, _ := MST(g)
		return len(edges) == g.N()-len(comps)
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTreePreorderAndDepths(t *testing.T) {
	//      0
	//     / \
	//    1   2
	//   /   / \
	//  3   4   5
	parent := []int{-1, 0, 0, 1, 2, 2}
	tr := NewTreeFromParents(0, parent)
	order := tr.Preorder()
	if order[0] != 0 || len(order) != 6 {
		t.Fatalf("Preorder = %v", order)
	}
	pos := make([]int, 6)
	for i, v := range order {
		pos[v] = i
	}
	// Every child appears after its parent.
	for v, p := range parent {
		if p >= 0 && pos[v] < pos[p] {
			t.Fatalf("child %d precedes parent %d in %v", v, p, order)
		}
	}
	d := tr.Depths()
	wantD := []int{0, 1, 1, 2, 2, 2}
	for i := range wantD {
		if d[i] != wantD[i] {
			t.Fatalf("Depths = %v", d)
		}
	}
	sz := tr.SubtreeSizes()
	wantSz := []int{6, 2, 3, 1, 1, 1}
	for i := range wantSz {
		if sz[i] != wantSz[i] {
			t.Fatalf("SubtreeSizes = %v", sz)
		}
	}
}

func TestMSTTree(t *testing.T) {
	edges := []Edge{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}}
	tr := MSTTree(5, edges, 0)
	if tr.Parent[1] != 0 || tr.Parent[2] != 1 {
		t.Fatalf("Parent = %v", tr.Parent)
	}
	if tr.Parent[3] != -1 || tr.Parent[4] != -1 {
		t.Fatal("other component should be absent")
	}
	if got := len(tr.Preorder()); got != 3 {
		t.Fatalf("Preorder covers %d vertices, want 3", got)
	}
}

func TestIndexedHeapOrdering(t *testing.T) {
	h := newIndexedHeap(10)
	prios := []float64{5, 3, 8, 1, 9, 2}
	for i, p := range prios {
		h.push(i, p)
	}
	h.push(2, 0.5) // decrease-key
	h.push(4, 100) // increase ignored
	var got []float64
	for h.len() > 0 {
		_, p := h.pop()
		got = append(got, p)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("heap pops out of order: %v", got)
		}
	}
	if got[0] != 0.5 {
		t.Fatalf("decrease-key not honoured: %v", got)
	}
}

func BenchmarkDijkstra(b *testing.B) {
	g := randomGraph(rng.New(1), 500, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, 0)
	}
}

func BenchmarkMST(b *testing.B) {
	g := randomGraph(rng.New(2), 500, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MST(g)
	}
}
