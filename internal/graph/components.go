package graph

// Components returns the connected components of g as vertex lists, in
// order of their smallest vertex, plus a comp array mapping each vertex to
// its component index. Sensor networks in the paper's sparse settings are
// frequently disconnected; mobile collection handles that natively (the
// collector just drives to each component), so the planners need the
// decomposition.
func Components(g *Graph) (comps [][]int, comp []int) {
	n := g.N()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int
	for v := 0; v < n; v++ {
		if comp[v] >= 0 {
			continue
		}
		id := len(comps)
		comp[v] = id
		queue = append(queue[:0], v)
		members := []int{v}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, a := range g.adj[u] {
				if comp[a.To] < 0 {
					comp[a.To] = id
					queue = append(queue, a.To)
					members = append(members, a.To)
				}
			}
		}
		comps = append(comps, members)
	}
	return comps, comp
}

// IsConnected reports whether g has at most one connected component.
func IsConnected(g *Graph) bool {
	comps, _ := Components(g)
	return len(comps) <= 1
}
