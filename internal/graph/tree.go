package graph

// Tree is a rooted tree over dense integer vertices, stored as parent
// pointers plus child lists. The TSP double-tree approximation and the
// routing layer's shortest-path trees both use it.
type Tree struct {
	Root     int
	Parent   []int   // Parent[Root] == -1; -1 also marks vertices outside the tree
	Children [][]int // derived from Parent
}

// NewTreeFromParents builds a Tree from a parent-pointer array, e.g. the
// Parent field of a BFS or Dijkstra result. Vertices with Parent -1 other
// than the root are treated as absent (useful for forests restricted to one
// component).
func NewTreeFromParents(root int, parent []int) *Tree {
	t := &Tree{Root: root, Parent: parent, Children: make([][]int, len(parent))}
	for v, p := range parent {
		if p >= 0 {
			t.Children[p] = append(t.Children[p], v)
		}
	}
	return t
}

// Preorder returns the vertices of the tree in depth-first preorder
// starting at the root. For an MST of tour stops, visiting stops in
// preorder and shortcutting repeats is the classic 2-approximation for
// metric TSP.
func (t *Tree) Preorder() []int {
	out := make([]int, 0, len(t.Parent))
	stack := []int{t.Root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		// Push children in reverse so the first child is visited first.
		kids := t.Children[v]
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
	return out
}

// Depths returns each vertex's hop depth below the root (-1 for vertices
// outside the tree).
func (t *Tree) Depths() []int {
	d := make([]int, len(t.Parent))
	for i := range d {
		d[i] = -1
	}
	d[t.Root] = 0
	for _, v := range t.Preorder() {
		if v != t.Root {
			d[v] = d[t.Parent[v]] + 1
		}
	}
	return d
}

// SubtreeSizes returns, for every vertex in the tree, the size of its
// subtree including itself (0 for vertices outside the tree). The routing
// layer uses this as the per-node relay load: a sensor forwards one packet
// per round for every descendant in the routing tree.
func (t *Tree) SubtreeSizes() []int {
	order := t.Preorder()
	size := make([]int, len(t.Parent))
	for _, v := range order {
		size[v] = 1
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if p := t.Parent[v]; p >= 0 {
			size[p] += size[v]
		}
	}
	return size
}

// MSTTree roots the spanning forest edges at root and returns the tree of
// root's component. Vertices in other components are absent (Parent -1).
func MSTTree(n int, edges []Edge, root int) *Tree {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	seen := make([]bool, n)
	seen[root] = true
	queue := []int{root}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return NewTreeFromParents(root, parent)
}
