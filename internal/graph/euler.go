package graph

import "fmt"

// EulerCircuit returns a closed walk over n vertices using every edge of
// the multigraph exactly once (Hierholzer's algorithm), starting at start.
// The Christofides-style tour construction feeds it the MST plus a
// matching on the odd-degree vertices. Requirements: every vertex has even
// degree, and all edges lie in start's connected component.
func EulerCircuit(n int, edges []Edge, start int) ([]int, error) {
	if start < 0 || start >= n {
		return nil, fmt.Errorf("graph: euler start %d out of range [0,%d)", start, n)
	}
	if len(edges) == 0 {
		return []int{start}, nil
	}
	// Adjacency with edge indices so each undirected edge is consumed once.
	type arc struct{ to, edge int }
	adj := make([][]arc, n)
	deg := make([]int, n)
	for ei, e := range edges {
		adj[e.U] = append(adj[e.U], arc{e.V, ei})
		adj[e.V] = append(adj[e.V], arc{e.U, ei})
		deg[e.U]++
		deg[e.V]++
	}
	for v, d := range deg {
		if d%2 != 0 {
			return nil, fmt.Errorf("graph: vertex %d has odd degree %d; no Euler circuit", v, d)
		}
	}
	if deg[start] == 0 {
		return nil, fmt.Errorf("graph: start %d touches no edge", start)
	}
	used := make([]bool, len(edges))
	next := make([]int, n) // per-vertex cursor into adj
	// Hierholzer with an explicit stack; the circuit comes out reversed,
	// which is irrelevant for an undirected closed walk but reversed for
	// determinism anyway.
	stack := []int{start}
	var circuit []int
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		advanced := false
		for next[v] < len(adj[v]) {
			a := adj[v][next[v]]
			next[v]++
			if used[a.edge] {
				continue
			}
			used[a.edge] = true
			stack = append(stack, a.to)
			advanced = true
			break
		}
		if !advanced {
			circuit = append(circuit, v)
			stack = stack[:len(stack)-1]
		}
	}
	for _, u := range used {
		if !u {
			return nil, fmt.Errorf("graph: edges unreachable from start %d; no Euler circuit", start)
		}
	}
	// Reverse for a forward walk from start.
	for i, j := 0, len(circuit)-1; i < j; i, j = i+1, j-1 {
		circuit[i], circuit[j] = circuit[j], circuit[i]
	}
	return circuit, nil
}
