package graph

import (
	"testing"

	"mobicol/internal/rng"
)

// walkUsesEachEdgeOnce verifies the closed walk traverses every edge
// exactly once and is connected step to step.
func walkUsesEachEdgeOnce(t *testing.T, n int, edges []Edge, walk []int) {
	t.Helper()
	if len(walk) != len(edges)+1 {
		t.Fatalf("walk length %d, want %d", len(walk), len(edges)+1)
	}
	if walk[0] != walk[len(walk)-1] {
		t.Fatalf("walk not closed: %v", walk)
	}
	remaining := map[[2]int]int{}
	for _, e := range edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		remaining[[2]int{u, v}]++
	}
	for i := 1; i < len(walk); i++ {
		u, v := walk[i-1], walk[i]
		if u > v {
			u, v = v, u
		}
		if remaining[[2]int{u, v}] == 0 {
			t.Fatalf("walk reuses or invents edge (%d,%d)", u, v)
		}
		remaining[[2]int{u, v}]--
	}
}

func TestEulerCircuitTriangle(t *testing.T) {
	edges := []Edge{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}}
	walk, err := EulerCircuit(3, edges, 0)
	if err != nil {
		t.Fatal(err)
	}
	walkUsesEachEdgeOnce(t, 3, edges, walk)
	if walk[0] != 0 {
		t.Fatalf("walk starts at %d", walk[0])
	}
}

func TestEulerCircuitMultigraph(t *testing.T) {
	// Two parallel edges form a valid circuit 0-1-0.
	edges := []Edge{{0, 1, 1}, {0, 1, 1}}
	walk, err := EulerCircuit(2, edges, 0)
	if err != nil {
		t.Fatal(err)
	}
	walkUsesEachEdgeOnce(t, 2, edges, walk)
}

func TestEulerCircuitFigureEight(t *testing.T) {
	// Two triangles sharing vertex 0: all even degrees.
	edges := []Edge{
		{0, 1, 1}, {1, 2, 1}, {2, 0, 1},
		{0, 3, 1}, {3, 4, 1}, {4, 0, 1},
	}
	walk, err := EulerCircuit(5, edges, 0)
	if err != nil {
		t.Fatal(err)
	}
	walkUsesEachEdgeOnce(t, 5, edges, walk)
}

func TestEulerCircuitRejectsOddDegree(t *testing.T) {
	if _, err := EulerCircuit(3, []Edge{{0, 1, 1}, {1, 2, 1}}, 0); err == nil {
		t.Fatal("odd-degree graph accepted")
	}
}

func TestEulerCircuitRejectsDisconnected(t *testing.T) {
	edges := []Edge{{0, 1, 1}, {0, 1, 1}, {2, 3, 1}, {2, 3, 1}}
	if _, err := EulerCircuit(4, edges, 0); err == nil {
		t.Fatal("disconnected edge set accepted")
	}
}

func TestEulerCircuitRejectsIsolatedStart(t *testing.T) {
	edges := []Edge{{1, 2, 1}, {1, 2, 1}}
	if _, err := EulerCircuit(3, edges, 0); err == nil {
		t.Fatal("edge-free start accepted")
	}
	if _, err := EulerCircuit(3, edges, 5); err == nil {
		t.Fatal("out-of-range start accepted")
	}
}

func TestEulerCircuitEmpty(t *testing.T) {
	walk, err := EulerCircuit(3, nil, 1)
	if err != nil || len(walk) != 1 || walk[0] != 1 {
		t.Fatalf("empty circuit = %v, %v", walk, err)
	}
}

func TestEulerCircuitRandomEvenGraphs(t *testing.T) {
	s := rng.New(80)
	for trial := 0; trial < 20; trial++ {
		// Build an even multigraph as a union of random cycles through
		// vertex 0 (guaranteeing connectivity to the start).
		n := 4 + s.Intn(20)
		var edges []Edge
		cycles := 1 + s.Intn(4)
		for c := 0; c < cycles; c++ {
			perm := s.Perm(n)
			// Rotate so the cycle includes vertex 0.
			for i, v := range perm {
				if v == 0 {
					perm[0], perm[i] = perm[i], perm[0]
					break
				}
			}
			k := 3 + s.Intn(n-3)
			cyc := perm[:k]
			for i := 0; i < k; i++ {
				edges = append(edges, Edge{cyc[i], cyc[(i+1)%k], 1})
			}
		}
		walk, err := EulerCircuit(n, edges, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		walkUsesEachEdgeOnce(t, n, edges, walk)
	}
}
