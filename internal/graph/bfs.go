package graph

// BFSResult holds hop counts and parent pointers from a breadth-first
// search. Unreached vertices have Dist -1 and Parent -1.
type BFSResult struct {
	Dist   []int // hop count from the nearest source
	Parent []int // predecessor on a shortest hop path, -1 at sources
}

// BFS runs breadth-first search from a single source.
func BFS(g *Graph, src int) *BFSResult { return MultiBFS(g, []int{src}) }

// MultiBFS runs breadth-first search from several sources at once: Dist is
// the hop count to the nearest source. The routing layer uses this with all
// "track-adjacent" sensors as sources to compute relay hop counts toward a
// mobile collector's path.
func MultiBFS(g *Graph, srcs []int) *BFSResult {
	r := &BFSResult{
		Dist:   make([]int, g.N()),
		Parent: make([]int, g.N()),
	}
	for i := range r.Dist {
		r.Dist[i] = -1
		r.Parent[i] = -1
	}
	queue := make([]int, 0, g.N())
	for _, s := range srcs {
		g.checkVertex(s)
		if r.Dist[s] == 0 {
			continue // duplicate source
		}
		r.Dist[s] = 0
		queue = append(queue, s)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, a := range g.adj[u] {
			if r.Dist[a.To] < 0 {
				r.Dist[a.To] = r.Dist[u] + 1
				r.Parent[a.To] = u
				queue = append(queue, a.To)
			}
		}
	}
	return r
}

// Reached reports whether v was reached by the search.
func (r *BFSResult) Reached(v int) bool { return r.Dist[v] >= 0 }

// PathTo returns the vertex sequence from a source to v (inclusive), or nil
// when v was not reached.
func (r *BFSResult) PathTo(v int) []int {
	if !r.Reached(v) {
		return nil
	}
	var rev []int
	for u := v; u != -1; u = r.Parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// MaxDist returns the largest finite hop count (the eccentricity of the
// source set), or -1 when nothing was reached.
func (r *BFSResult) MaxDist() int {
	m := -1
	for _, d := range r.Dist {
		if d > m {
			m = d
		}
	}
	return m
}
