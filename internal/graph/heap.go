package graph

// indexedHeap is a binary min-heap keyed by float64 priority with
// decrease-key support, specialised for dense integer items [0, n).
// Both Dijkstra and Prim need decrease-key, which container/heap only
// supports awkwardly; a purpose-built heap is simpler and faster.
type indexedHeap struct {
	items []int     // heap order -> item
	pos   []int     // item -> heap position (-1 when absent)
	prio  []float64 // item -> priority
}

func newIndexedHeap(n int) *indexedHeap {
	h := &indexedHeap{
		items: make([]int, 0, n),
		pos:   make([]int, n),
		prio:  make([]float64, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *indexedHeap) len() int { return len(h.items) }

func (h *indexedHeap) contains(item int) bool { return h.pos[item] >= 0 }

// push inserts item with priority p, or decreases its key if already
// present with a larger priority. Increase requests are ignored.
func (h *indexedHeap) push(item int, p float64) {
	if h.pos[item] >= 0 {
		if p < h.prio[item] {
			h.prio[item] = p
			h.up(h.pos[item])
		}
		return
	}
	h.prio[item] = p
	h.pos[item] = len(h.items)
	h.items = append(h.items, item)
	h.up(len(h.items) - 1)
}

// pop removes and returns the minimum-priority item.
func (h *indexedHeap) pop() (item int, p float64) {
	item = h.items[0]
	p = h.prio[item]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items = h.items[:last]
	h.pos[item] = -1
	if last > 0 {
		h.down(0)
	}
	return item, p
}

func (h *indexedHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i]] = i
	h.pos[h.items[j]] = j
}

func (h *indexedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[h.items[i]] >= h.prio[h.items[parent]] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *indexedHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.prio[h.items[l]] < h.prio[h.items[smallest]] {
			smallest = l
		}
		if r < n && h.prio[h.items[r]] < h.prio[h.items[smallest]] {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
