package graph

import "math"

// SPResult holds weighted shortest-path distances and parent pointers.
// Unreached vertices have Dist +Inf and Parent -1.
type SPResult struct {
	Dist   []float64
	Parent []int
}

// Dijkstra computes single-source weighted shortest paths. Edge weights
// must be non-negative (true for all geometric graphs here).
func Dijkstra(g *Graph, src int) *SPResult {
	g.checkVertex(src)
	r := &SPResult{
		Dist:   make([]float64, g.N()),
		Parent: make([]int, g.N()),
	}
	for i := range r.Dist {
		r.Dist[i] = math.Inf(1)
		r.Parent[i] = -1
	}
	r.Dist[src] = 0
	h := newIndexedHeap(g.N())
	h.push(src, 0)
	for h.len() > 0 {
		u, du := h.pop()
		if du > r.Dist[u] {
			continue
		}
		for _, a := range g.adj[u] {
			if a.W < 0 {
				//mdglint:ignore nopanic algorithm precondition; edge weights are distances, so a negative weight is a construction bug
				panic("graph: Dijkstra on negative edge weight")
			}
			if nd := du + a.W; nd < r.Dist[a.To] {
				r.Dist[a.To] = nd
				r.Parent[a.To] = u
				h.push(a.To, nd)
			}
		}
	}
	return r
}

// Reached reports whether v was reached.
func (r *SPResult) Reached(v int) bool { return !math.IsInf(r.Dist[v], 1) }

// PathTo returns the vertex sequence from the source to v, or nil when v is
// unreachable.
func (r *SPResult) PathTo(v int) []int {
	if !r.Reached(v) {
		return nil
	}
	var rev []int
	for u := v; u != -1; u = r.Parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
