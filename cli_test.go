package mobicol

// End-to-end tests of the four CLI tools: build each binary once, then
// drive the documented pipelines (generate → plan → simulate) through
// real process boundaries, JSON files and pipes included.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mobicol/internal/obs"
)

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

// buildCLIs compiles the cmd binaries into a shared temp dir once.
func buildCLIs(t *testing.T) string {
	t.Helper()
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "mobicol-cli")
		if cliErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", cliDir+string(filepath.Separator), "./cmd/...")
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Run(); err != nil {
			cliErr = err
			t.Logf("go build output:\n%s", out.String())
		}
	})
	if cliErr != nil {
		t.Fatalf("building CLIs: %v", cliErr)
	}
	return cliDir
}

func runCLI(t *testing.T, stdin []byte, name string, args ...string) (stdout, stderr string) {
	t.Helper()
	dir := buildCLIs(t)
	cmd := exec.Command(filepath.Join(dir, name), args...)
	if stdin != nil {
		cmd.Stdin = bytes.NewReader(stdin)
	}
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", name, args, err, errBuf.String())
	}
	return outBuf.String(), errBuf.String()
}

func TestCLIPipelinePlan(t *testing.T) {
	net, _ := runCLI(t, nil, "wsngen", "-n", "80", "-side", "150", "-range", "30", "-seed", "4")
	out, _ := runCLI(t, []byte(net), "mdgplan", "-algo", "shdg", "-k", "2")
	for _, want := range []string{"algorithm:", "stops:", "tour:", "served:     80/80", "collectors: 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mdgplan output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIPlanArtifacts(t *testing.T) {
	dir := t.TempDir()
	netPath := filepath.Join(dir, "net.json")
	svgPath := filepath.Join(dir, "tour.svg")
	jsonPath := filepath.Join(dir, "plan.json")
	runCLI(t, nil, "wsngen", "-n", "60", "-seed", "7", "-o", netPath)
	runCLI(t, nil, "mdgplan", "-net", netPath, "-svg", svgPath, "-json", jsonPath)
	svg, err := os.ReadFile(svgPath)
	if err != nil || !bytes.HasPrefix(svg, []byte("<svg")) {
		t.Fatalf("svg artifact bad: %v", err)
	}
	plan, err := os.ReadFile(jsonPath)
	if err != nil || !bytes.Contains(plan, []byte(`"stops"`)) {
		t.Fatalf("plan artifact bad: %v", err)
	}
}

func TestCLIObstaclePipeline(t *testing.T) {
	dir := t.TempDir()
	obstPath := filepath.Join(dir, "obst.json")
	netPath := filepath.Join(dir, "net.json")
	course := `{"obstacles":[[[60,55],[95,55],[95,90],[60,90]]]}`
	if err := os.WriteFile(obstPath, []byte(course), 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, nil, "wsngen", "-n", "70", "-seed", "9", "-obstacles", obstPath, "-o", netPath)
	out, _ := runCLI(t, nil, "mdgplan", "-net", netPath, "-obstacles", obstPath)
	if !strings.Contains(out, "obstacles:  1") || !strings.Contains(out, "detour") {
		t.Fatalf("obstacle mode output:\n%s", out)
	}
}

// TestCLIUnknownAlgo pins the algorithm-selection error path: an
// unregistered -algo name must exit 2 (usage error, distinct from the
// runtime-failure exit 1) and the message must list the registered
// planner names so the fix is in the error itself.
func TestCLIUnknownAlgo(t *testing.T) {
	const want = `unknown algorithm "bogus" (registered: cla, exact, shdg, sweep, visit-all, warm)`
	cases := []struct {
		name string
		args []string
	}{
		{"mdgplan", []string{"-algo", "bogus"}},
		{"mdgbench", []string{"-algo", "bogus", "-e", "none"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := runExitCLI(t, tc.name, tc.args...)
			if code != 2 {
				t.Fatalf("%s %v exited %d, want 2\nstderr: %s", tc.name, tc.args, code, stderr)
			}
			if !strings.Contains(stderr, want) {
				t.Fatalf("%s stderr missing %q:\n%s", tc.name, want, stderr)
			}
		})
	}
}

func TestCLILifetime(t *testing.T) {
	net, _ := runCLI(t, nil, "wsngen", "-n", "100", "-seed", "2")
	out, _ := runCLI(t, []byte(net), "mdglife", "-battery", "0.01")
	for _, want := range []string{"shdg", "cla", "straight-line", "static-sink", "residual p50/p90/p99(J)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mdglife output missing %q:\n%s", want, out)
		}
	}
}

// TestCLITraceDeterminism is the acceptance regression for the obs trace
// contract: two mdgplan runs over the same deployment must produce
// byte-identical JSONL traces once the wall-clock timing fields are
// stripped, and the trace must actually cover the planner phases.
func TestCLITraceDeterminism(t *testing.T) {
	dir := t.TempDir()
	netPath := filepath.Join(dir, "net.json")
	runCLI(t, nil, "wsngen", "-n", "90", "-seed", "11", "-o", netPath)

	canonical := func(path string) []string {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var lines []string
		for _, line := range bytes.Split(raw, []byte("\n")) {
			c, err := obs.CanonicalLine(line)
			if err != nil {
				t.Fatalf("unparseable trace line %q: %v", line, err)
			}
			if c != nil {
				lines = append(lines, string(c))
			}
		}
		return lines
	}

	tracePaths := [2]string{filepath.Join(dir, "t1.jsonl"), filepath.Join(dir, "t2.jsonl")}
	for _, p := range tracePaths {
		runCLI(t, nil, "mdgplan", "-net", netPath, "-algo", "shdg", "-trace", p, "-metrics")
	}
	first, second := canonical(tracePaths[0]), canonical(tracePaths[1])
	if len(first) != len(second) {
		t.Fatalf("trace lengths differ: %d vs %d lines", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("canonical traces diverge at line %d:\n  %s\n  %s", i+1, first[i], second[i])
		}
	}

	spans := map[string]bool{}
	metricNames := map[string]bool{}
	for _, line := range first {
		var ev struct {
			Ev     string `json:"ev"`
			Span   string `json:"span"`
			Metric string `json:"metric"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("canonical line not JSON: %q: %v", line, err)
		}
		switch ev.Ev {
		case "span":
			spans[ev.Span] = true
		case "metric":
			metricNames[ev.Metric] = true
		}
	}
	for _, want := range []string{"plan", "candidates", "cover", "tsp"} {
		if !spans[want] {
			t.Errorf("trace missing %q span; got spans %v", want, spans)
		}
	}
	if len(metricNames) < 5 {
		t.Errorf("want >= 5 distinct metrics in the trace, got %d: %v", len(metricNames), metricNames)
	}
}

func TestCLIBenchArtifact(t *testing.T) {
	benchPath := filepath.Join(t.TempDir(), "bench.json")
	_, stderr := runCLI(t, nil, "mdgbench", "-e", "none", "-trials", "1", "-bench-out", benchPath)
	if !strings.Contains(stderr, "wrote") {
		t.Fatalf("mdgbench -bench-out stderr:\n%s", stderr)
	}
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Schema string `json:"schema"`
		Meta   struct {
			Workers        int `json:"workers"`
			TrialsPerPhase int `json:"trials_per_phase"`
		} `json:"meta"`
		Algos []struct {
			Algo    string           `json:"algo"`
			PhaseNs map[string]int64 `json:"phase_ns"`
		} `json:"algos"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("bench artifact not JSON: %v", err)
	}
	if res.Schema != "mobicol/bench-planner/v3" || len(res.Algos) != 3 {
		t.Fatalf("bench artifact = %+v", res)
	}
	if res.Meta.Workers < 1 || res.Meta.TrialsPerPhase != 1 {
		t.Fatalf("bench artifact v3 meta = %+v", res.Meta)
	}
	if _, ok := res.Algos[0].PhaseNs["plan"]; !ok {
		t.Fatalf("shdg row missing plan phase: %+v", res.Algos[0])
	}
}

func TestCLIBenchSingleExperiment(t *testing.T) {
	out, _ := runCLI(t, nil, "mdgbench", "-e", "E2", "-trials", "2")
	if !strings.Contains(out, "E2 — tour length vs number of sensors") {
		t.Fatalf("mdgbench output:\n%s", out)
	}
	csvOut, _ := runCLI(t, nil, "mdgbench", "-e", "E2", "-trials", "2", "-csv")
	if !strings.HasPrefix(csvOut, "N,SHDG(m)") {
		t.Fatalf("mdgbench csv output:\n%s", csvOut)
	}
}
