package mobicol

import (
	"math"
	"testing"
)

func testNet(seed uint64) *Network {
	return MustDeploy(DeployConfig{N: 150, FieldSide: 200, Range: 30, Seed: seed})
}

func TestPlanTourEndToEnd(t *testing.T) {
	nw := testNet(1)
	sol, err := PlanTour(nw)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(NewProblem(nw)); err != nil {
		t.Fatal(err)
	}
	if sol.Length <= 0 || sol.Stops() == 0 {
		t.Fatalf("degenerate solution: %.1fm, %d stops", sol.Length, sol.Stops())
	}
}

func TestPlanTourWithOptionsAndStrategies(t *testing.T) {
	nw := testNet(2)
	for _, strat := range []CandidateStrategy{SensorSites, FieldGrid, Intersections} {
		p := NewProblem(nw)
		p.Strategy = strat
		sol, err := PlanTourWith(p, DefaultPlannerOptions())
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if err := sol.Validate(p); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
	}
}

func TestPlanTourExactSmall(t *testing.T) {
	nw := MustDeploy(DeployConfig{N: 12, FieldSide: 70, Range: 25, Seed: 3})
	ex, err := PlanTourExact(nw)
	if err != nil {
		t.Fatal(err)
	}
	heur, err := PlanTour(nw)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Length > heur.Length+1e-6 {
		t.Fatalf("exact %.2f worse than heuristic %.2f", ex.Length, heur.Length)
	}
}

func TestVisitAllLongerThanPlan(t *testing.T) {
	nw := testNet(4)
	sol, err := PlanTour(nw)
	if err != nil {
		t.Fatal(err)
	}
	all, err := PlanVisitAll(nw)
	if err != nil {
		t.Fatal(err)
	}
	if all.Length <= sol.Length {
		t.Fatalf("visit-all %.1f not longer than SHDG %.1f", all.Length, sol.Length)
	}
}

func TestMultiCollectorAPI(t *testing.T) {
	nw := testNet(5)
	sol, err := PlanTour(nw)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := SplitTour(nw, sol, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mp.K() > 3 || mp.MaxLength() <= 0 {
		t.Fatalf("split: k=%d maxLen=%.1f", mp.K(), mp.MaxLength())
	}
	plans, err := SubTourPlans(nw, sol, mp)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, p := range plans {
		served += p.Served()
	}
	if served != nw.N() {
		t.Fatalf("sub-tours serve %d of %d", served, nw.N())
	}
	bounded, err := MinCollectors(nw, sol, float64(sol.Length)/2+300)
	if err != nil {
		t.Fatal(err)
	}
	if bounded.K() < 1 {
		t.Fatal("no collectors")
	}
}

func TestBaselinesAndSimulationAPI(t *testing.T) {
	nw := testNet(6)
	sol, err := PlanTour(nw)
	if err != nil {
		t.Fatal(err)
	}
	cla, err := PlanCLA(nw)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := PlanStraightLine(nw, 2)
	if err != nil {
		t.Fatal(err)
	}
	static := PlanStaticSink(nw)

	model := DefaultEnergyModel()
	model.InitialJ = 0.01
	mobile := MobileScheme("shdg", nw, sol.Plan)
	schemes := []Scheme{mobile, StaticScheme(static), StraightLineScheme(sl)}
	var lifetimes []int
	for _, s := range schemes {
		res, err := RunLifetime(s, nw.N(), model, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		lifetimes = append(lifetimes, int(res.Rounds))
	}
	if lifetimes[0] <= lifetimes[1] {
		t.Fatalf("mobile lifetime %d not beyond static %d", lifetimes[0], lifetimes[1])
	}
	spec := DefaultCollectorSpec()
	if RoundLatency(mobile, spec, 0.005) <= RoundLatency(StaticScheme(static), spec, 0.005) {
		t.Fatal("mobility should cost latency")
	}
	if cla.Served() != nw.N() {
		t.Fatal("CLA does not serve everyone")
	}
}

func TestNewNetworkExplicit(t *testing.T) {
	nw := NewNetwork([]Point{Pt(10, 10), Pt(90, 90)}, Pt(50, 50), 30, 100)
	if nw.N() != 2 {
		t.Fatal("explicit network wrong")
	}
	sol, err := PlanTour(nw)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(float64(sol.Length)) || sol.Length <= 0 {
		t.Fatalf("length %v", sol.Length)
	}
}
