package mobicol

// End-to-end test of the mdgescape escape-diagnostic ratchet against a
// throwaway module: create the baseline, verify a clean compare, inject
// a function that forces a new heap escape, and check the gate trips.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runEscape runs the built mdgescape binary with the working directory
// set to dir (the tool invokes `go build` relative to its cwd).
func runEscape(t *testing.T, dir string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	bin := filepath.Join(buildCLIs(t), "mdgescape")
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	err := cmd.Run()
	code = 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("mdgescape %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return outBuf.String(), errBuf.String(), code
}

// writeEscapeModule lays down a single-package module with two known
// escapes (a composite literal and a make, both returned to the caller).
func writeEscapeModule(t *testing.T) (dir, srcPath string) {
	t.Helper()
	dir = t.TempDir()
	gomod := "module example.com/esc\n\ngo 1.21\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "p"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package p

type Buf struct{ xs []int }

// NewBuf's literal and make both escape: the pointer is returned.
func NewBuf(n int) *Buf {
	return &Buf{xs: make([]int, n)}
}
`
	srcPath = filepath.Join(dir, "p", "p.go")
	if err := os.WriteFile(srcPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, srcPath
}

func TestCLIEscapeRatchet(t *testing.T) {
	dir, srcPath := writeEscapeModule(t)
	baseline := filepath.Join(dir, "baseline.txt")

	// Create the baseline from the initial module.
	out, errOut, code := runEscape(t, dir, "-baseline", baseline, "-update", "./p")
	if code != 0 {
		t.Fatalf("-update exited %d\nstderr: %s", code, errOut)
	}
	if !strings.Contains(out, "wrote") {
		t.Fatalf("-update output missing confirmation: %q", out)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	if !strings.Contains(string(data), "example.com/esc/p p.go escapes-to-heap") {
		t.Fatalf("baseline missing the known escapes:\n%s", data)
	}

	// Clean compare holds.
	out, errOut, code = runEscape(t, dir, "-baseline", baseline, "./p")
	if code != 0 {
		t.Fatalf("clean compare exited %d\nstderr: %s", code, errOut)
	}
	if !strings.Contains(out, "hold against the baseline") {
		t.Fatalf("clean compare output missing hold message: %q", out)
	}

	// Inject a regression: a named local forced to the heap.
	leak := `
// Leak forces x to the heap: the returned pointer outlives the frame.
func Leak() *int {
	x := 3
	return &x
}
`
	f, err := os.OpenFile(srcPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(leak); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, errOut, code = runEscape(t, dir, "-baseline", baseline, "./p")
	if code != 1 {
		t.Fatalf("regressed compare exited %d, want 1\nstderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "p.go") || !strings.Contains(errOut, "moved-to-heap") {
		t.Fatalf("regression diagnostics must cite the file and kind:\n%s", errOut)
	}
	if !strings.Contains(errOut, "above the escape baseline") {
		t.Fatalf("regression summary line missing:\n%s", errOut)
	}
}

func TestCLIEscapeMissingBaseline(t *testing.T) {
	dir, _ := writeEscapeModule(t)
	_, errOut, code := runEscape(t, dir, "-baseline", filepath.Join(dir, "nope.txt"), "./p")
	if code != 2 {
		t.Fatalf("missing baseline exited %d, want 2\nstderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "mdgescape:") {
		t.Fatalf("operational error must be reported on stderr:\n%s", errOut)
	}
}
