package mobicol

// End-to-end tests for the verification surface of the CLIs: the -check
// flag on the planning/simulation tools, the mdgreport experiment
// selector, wsngen's placement families, and the mdgcov coverage
// ratchet. Companion to cli_test.go, sharing its buildCLIs/runCLI
// helpers.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCLIErr runs a CLI expecting a non-zero exit and returns its output
// and exit code. The inverse of runCLI, for the tools' refusal paths.
func runCLIErr(t *testing.T, stdin []byte, name string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	dir := buildCLIs(t)
	cmd := exec.Command(filepath.Join(dir, name), args...)
	if stdin != nil {
		cmd.Stdin = bytes.NewReader(stdin)
	}
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	err := cmd.Run()
	if err == nil {
		t.Fatalf("%s %v: expected failure, exited 0\nstdout: %s", name, args, outBuf.String())
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s %v: did not run: %v", name, args, err)
	}
	return outBuf.String(), errBuf.String(), ee.ExitCode()
}

func TestCLIWsngenPlacements(t *testing.T) {
	for _, placement := range []string{"uniform", "grid-jitter", "clustered", "ring", "corridor"} {
		net, stderr := runCLI(t, nil, "wsngen",
			"-n", "40", "-side", "150", "-range", "30", "-seed", "3", "-placement", placement)
		if !strings.Contains(net, `"sensors"`) || !strings.Contains(net, `"range"`) {
			t.Fatalf("%s: output is not a network JSON:\n%s", placement, net)
		}
		if !strings.Contains(stderr, "avg degree") {
			t.Fatalf("%s: missing deployment summary on stderr:\n%s", placement, stderr)
		}
		// Every placement's output must feed straight into the planner.
		runCLI(t, []byte(net), "mdgplan", "-algo", "shdg", "-check")
	}
}

func TestCLIWsngenUnknownPlacement(t *testing.T) {
	_, stderr, code := runCLIErr(t, nil, "wsngen", "-placement", "spiral")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "unknown placement") {
		t.Fatalf("stderr missing diagnostic:\n%s", stderr)
	}
}

// TestCLIPlanCheck pins the -check contract on mdgplan: every algorithm
// passes the oracle on a healthy deployment and says so in the report.
func TestCLIPlanCheck(t *testing.T) {
	net, _ := runCLI(t, nil, "wsngen", "-n", "60", "-side", "150", "-range", "30", "-seed", "5")
	for _, algo := range []string{"shdg", "visit-all", "cla"} {
		out, _ := runCLI(t, []byte(net), "mdgplan", "-algo", algo, "-check")
		if !strings.Contains(out, "check:      ok") {
			t.Fatalf("%s: -check run missing confirmation line:\n%s", algo, out)
		}
	}
}

func TestCLILifetimeCheck(t *testing.T) {
	net, _ := runCLI(t, nil, "wsngen", "-n", "60", "-seed", "6")
	out, _ := runCLI(t, []byte(net), "mdglife", "-battery", "0.01", "-check")
	if !strings.Contains(out, "check: ok") {
		t.Fatalf("mdglife -check missing confirmation line:\n%s", out)
	}
}

func TestCLIReportSingleExperiment(t *testing.T) {
	out, _ := runCLI(t, nil, "mdgreport", "-e", "E2", "-trials", "1", "-check")
	for _, want := range []string{"# mobicol reproduction report", "E2 — tour length vs number of sensors"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mdgreport output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIReportUnknownExperiment(t *testing.T) {
	_, stderr, code := runCLIErr(t, nil, "mdgreport", "-e", "E99", "-trials", "1")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "unknown experiment") {
		t.Fatalf("stderr missing diagnostic:\n%s", stderr)
	}
}

// TestCLICoverageRatchet drives mdgcov through its whole lifecycle with
// canned `go test -cover` output: write floors, hold against them, then
// fail when a package regresses.
func TestCLICoverageRatchet(t *testing.T) {
	const healthy = "ok  \tmobicol/internal/geom\t0.011s\tcoverage: 82.5% of statements\n" +
		"ok  \tmobicol/internal/wsn\t0.020s\tcoverage: 74.1% of statements\n" +
		"?   \tmobicol/cmd/wsngen\t[no test files]\n"
	ratchet := filepath.Join(t.TempDir(), "ratchet.txt")

	out, _ := runCLI(t, []byte(healthy), "mdgcov", "-ratchet", ratchet, "-update", "-margin", "1.0")
	if !strings.Contains(out, "wrote 2 floors") {
		t.Fatalf("mdgcov -update output:\n%s", out)
	}
	raw, err := os.ReadFile(ratchet)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "mobicol/internal/geom 81.5") {
		t.Fatalf("ratchet file missing margin-adjusted floor:\n%s", raw)
	}

	out, _ = runCLI(t, []byte(healthy), "mdgcov", "-ratchet", ratchet)
	if !strings.Contains(out, "hold against") {
		t.Fatalf("mdgcov compare output:\n%s", out)
	}

	const regressed = "ok  \tmobicol/internal/geom\t0.011s\tcoverage: 60.0% of statements\n" +
		"ok  \tmobicol/internal/wsn\t0.020s\tcoverage: 74.1% of statements\n"
	_, stderr, code := runCLIErr(t, []byte(regressed), "mdgcov", "-ratchet", ratchet)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "below the coverage ratchet") || !strings.Contains(stderr, "internal/geom") {
		t.Fatalf("mdgcov regression stderr:\n%s", stderr)
	}
}
